//! The search engine: trail, propagation, conflict/solution analysis and
//! backjumping.
//!
//! # Soundness architecture
//!
//! Every learned **clause** is obtained from real clauses (original or
//! previously learned) by Q-resolution steps plus universal reductions that
//! are legal w.r.t. the partial order `≺` (Lemma 3); every learned **cube**
//! is obtained from an implicant of the matrix (model generation) by term
//! resolutions and legal existential reductions. A resolution step that
//! would produce a tautological resolvent — or would pull in a literal that
//! is currently satisfied (falsified for cubes) — is *skipped*: the pivot
//! literal simply stays in the learned constraint, which remains derivable
//! and hence sound, merely weaker.
//!
//! Backjumping (popping a decision level without flipping its decision) is
//! performed only when the learned constraint *witnesses* that the level was
//! irrelevant; in every other situation the engine falls back to the
//! chronological Q-DLL step (flip the most recent unflipped existential
//! decision on conflicts, universal decision on solutions), so the search is
//! structurally a DFS and always terminates.
//!
//! # Watched-literal propagation
//!
//! Unit/conflict detection on clauses and unit/solution detection on cubes
//! use lazy watched-literal indices (see [`super::db`]): processing a
//! trail literal `l` visits only the clauses watching `¬l` and the cubes
//! watching `l`, instead of scanning all four occurrence lists. The
//! discipline is the QDPLL adaptation of the classic two-watched-literal
//! scheme, with two QBF-specific twists:
//!
//! * **Movable watches rest only on the constraint's *relevant*
//!   quantifier** — existential literals for clauses, universal for cubes
//!   (cf. the watched data structures of Gent et al. for QBF). A clause's
//!   Lemma 4/5 status depends on its existential literals being false
//!   (free/false universals are removable by universal reduction; a true
//!   literal of either kind satisfies it), so two non-false existential
//!   watches certify "neither conflicting nor unit". Replacement searches
//!   accept only non-false existentials; when none exists the watch is
//!   kept *stale* on the falsified literal and the clause is examined
//!   under Lemma 4/5 on the spot. A clause with fewer than two
//!   existential literals just keeps fewer movable watches (a clause with
//!   none is conflicting at the initial scan).
//! * **Pinned unblock sentinels** cover the `≺`-blocked cases of
//!   Lemma 5: each universal literal `u` of a clause containing an
//!   existential `e` with `u ≺ e` carries a permanent watcher entry that
//!   is never moved and always examines the clause when `u` is falsified —
//!   exactly the event that can unblock a pending unit. Cubes carry the
//!   dual sentinels on outer existential literals.
//!
//! **Why watchers need no undo:** backtracking unassigns a suffix of the
//! trail, level by level. Pinned sentinels are position-independent, so
//! only the movable watches need an argument. If both movable watches of a
//! clause are non-false, falsifying unwatched literals cannot make it
//! unit or conflicting (two free existentials remain), and unassignment
//! only moves it further from either verdict. A watch goes stale on `p`
//! only when every tail existential is false — each at a trail position
//! `≤ pos(p)` or inside `p`'s own decision level (units assigned while
//! `p`'s watch list is being processed) — so any backtrack that revives a
//! tail existential revives `p` first, restoring the two-free-watches
//! invariant. States *between* those transitions are exact replays of
//! earlier propagation fixpoints, which held no event by induction.
//! Learned constraints are born with their relevant literals watched in
//! unassigned-first, then latest-falsified-first order, which establishes
//! the same invariant at birth.
//!
//! One caveat is inherited from the seed engine rather than the watched
//! indices: the QUBE-style unwind can assert a flipped literal above the
//! levels of its constraint's remaining literals, so a deep backjump may
//! re-expose a *learned* constraint's unit with no assignment event.
//! Neither engine re-detects such a unit until a literal of the
//! constraint is touched again; for original constraints the triggering
//! falsification always shares the propagated literal's level, so their
//! units are never re-exposed.
//!
//! With the `debug-counters` feature the seed engine's eager
//! `true_count`/`false_count` discipline runs in shadow over full
//! occurrence lists and is cross-checked against the watched conclusions
//! at every no-event propagation fixpoint (see `shadow_verify`): counters
//! must match a from-scratch recount, no clause may be conflicting and no
//! cube validated, and no original constraint may be unit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::metrics::{EngineGauge, MetricsSink, NoopMetrics, Phase};
use crate::observe::{LearnedKind, NoopObserver, PropagationKind, SearchObserver};
use crate::portfolio::ShareConn;
use crate::prefix::{BlockId, Prefix};
use crate::proof::{NoProof, ProofSink};
use crate::qbf::Qbf;
use crate::var::{Lit, Var};

use super::db::{ConstraintRef, Db, Kind, Watcher};
use super::heuristic::Brancher;
use super::{Outcome, SolverConfig, Stats};

/// Why a variable is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    Decision,
    Constraint(ConstraintRef),
    Pure,
}

/// A decision-stack frame (one per decision level).
#[derive(Debug, Clone, Copy)]
struct Frame {
    lit: Lit,
    /// Whether this decision is the second branch of its variable.
    flipped: bool,
    /// For flipped decisions: the constraint that refuted the first branch
    /// (clause for existential flips, cube for universal flips), usable as
    /// a resolution partner when the second branch fails too.
    pseudo_reason: Option<ConstraintRef>,
    trail_start: usize,
}

#[derive(Debug)]
enum Event {
    Conflict(ConstraintRef),
    /// A learned cube became true / existential-only under the assignment.
    CubeSolution(ConstraintRef),
}

/// Registers pinned unblock sentinels for `cref` (see [`super::db`]): one
/// permanent watcher per universal literal of a clause that `≺`-precedes
/// some existential literal of the same clause (dually, per existential
/// literal of a cube preceding some universal of the cube). Such literals
/// are exactly the ones whose falsification (satisfaction for cubes) can
/// *unblock* a Lemma 5 unit; the sentinel guarantees that event always
/// triggers an examination. The blocker is one of the literals it blocks,
/// enabling the satisfied/disabled fast path on visits.
fn attach_unblock_sentinels(db: &mut Db, prefix: &Prefix, cref: ConstraintRef) {
    let lits = db.lits(cref).to_vec();
    match cref.kind() {
        Kind::Clause => {
            for &u in &lits {
                if prefix.is_existential(u.var()) {
                    continue;
                }
                let blocked = lits.iter().copied().find(|&e| {
                    prefix.is_existential(e.var()) && prefix.precedes(u.var(), e.var())
                });
                if let Some(e) = blocked {
                    db.watch_clause[u.code()].push(Watcher::new(cref, e, true));
                }
            }
        }
        Kind::Cube => {
            for &e in &lits {
                if !prefix.is_existential(e.var()) {
                    continue;
                }
                let blocked = lits.iter().copied().find(|&u| {
                    !prefix.is_existential(u.var()) && prefix.precedes(e.var(), u.var())
                });
                if let Some(u) = blocked {
                    db.watch_cube[e.code()].push(Watcher::new(cref, u, true));
                }
            }
        }
    }
}

/// The iterative QUBE-style solver. See the [module docs](crate::solver).
///
/// The solver is generic over a [`SearchObserver`] so that tracing,
/// profiling and progress reporting can hook every search event. The
/// default observer is [`NoopObserver`], whose empty inline callbacks
/// compile away entirely — `Solver::new` runs the exact pre-observability
/// hot path (see `tests/observe_integration.rs` for the determinism
/// guard).
#[derive(Debug)]
pub struct Solver<
    'a,
    O: SearchObserver = NoopObserver,
    P: ProofSink = NoProof,
    M: MetricsSink = NoopMetrics,
> {
    qbf: &'a Qbf,
    config: SolverConfig,
    db: Db,
    brancher: Brancher,
    observer: O,
    proof: P,
    metrics: M,

    value: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    /// Trail index at which each variable was assigned (stale when
    /// unassigned; only consulted for assigned variables).
    trail_pos: Vec<u32>,
    trail: Vec<Lit>,
    qhead: usize,
    frames: Vec<Frame>,

    /// Unassigned-variable count per prefix block (availability tracking).
    block_unassigned: Vec<u32>,
    /// Per literal: number of *unsatisfied original* clauses containing it
    /// (monotone-literal detection).
    active_occ: Vec<u32>,
    pure_candidates: Vec<Var>,

    stats: Stats,
    conflicts_since_decay: u64,

    /// Push-frame dependency accumulator for the analysis currently in
    /// flight: the max frame mark over the start constraint and every
    /// antecedent actually used by a resolution step. Written into the
    /// learned constraint's mark by `learn`. Stays 0 throughout one-shot
    /// solving and for cube analyses (cube antecedents never carry marks:
    /// an implicant of a matrix is an implicant of every sub-matrix, so
    /// goods survive `pop` unconditionally).
    analysis_mark: u32,

    /// Scratch membership flags, one per literal code, used by the
    /// resolution loops and the implicant builder to answer
    /// `lits.contains(..)` in O(1). Always all-false between uses.
    lit_mark: Vec<bool>,
    /// Whether `QBF_DEBUG` was set at construction (checking the
    /// environment on every solution is measurable on cube-heavy runs).
    debug_dump: bool,

    /// Whether `run` already performed the initial Lemma 4/5 scan and
    /// pure seeding. Lets a portfolio driver call `solve_mut` repeatedly
    /// to *resume* the same search (epoch stepping) without rescanning;
    /// cleared by `reset_search`, so incremental re-solves still scan.
    search_started: bool,
    /// Resume budget for portfolio epoch stepping: `run` yields `None`
    /// once `Stats.assignments` reaches this bound. Unlike
    /// `config.node_limit` (strict `>`, a hard budget), this is an
    /// inclusive pause point that the driver moves forward every epoch.
    epoch_limit: Option<u64>,
    /// Cooperative cancellation flag shared across portfolio workers:
    /// polled at every decision boundary (the top of the search loop).
    stop: Option<Arc<AtomicBool>>,
    /// Portfolio sharing connection: learned constraints are offered on
    /// the way out, peers' constraints are drained at decision
    /// boundaries. Boxed to keep the solver struct lean for the common
    /// single-threaded case.
    share: Option<Box<ShareConn>>,
    /// A conflict/solution event produced by *attaching* an imported
    /// constraint, parked until the next loop iteration so the import
    /// drain can stop immediately and `maybe_reduce_db` is skipped while
    /// the event's constraint reference is in flight.
    pending_event: Option<Event>,
}

impl<'a> Solver<'a> {
    /// Prepares a solver for the given QBF with the (zero-cost) no-op
    /// observer.
    pub fn new(qbf: &'a Qbf, config: SolverConfig) -> Self {
        Solver::with_parts(qbf, config, NoopObserver, NoProof)
    }
}

impl<'a, O: SearchObserver> Solver<'a, O> {
    /// Prepares a solver for the given QBF that reports every search
    /// event to `observer`. Pass `&mut obs` to keep ownership of the
    /// observer across [`Solver::solve`] (which consumes the solver).
    pub fn with_observer(qbf: &'a Qbf, config: SolverConfig, observer: O) -> Self {
        Solver::with_parts(qbf, config, observer, NoProof)
    }
}

impl<'a, P: ProofSink> Solver<'a, NoopObserver, P> {
    /// Prepares a solver that records a Q-resolution/Q-consensus
    /// certificate into `proof` (see [`crate::proof`]). Pass `&mut log`
    /// to keep ownership of the log across [`Solver::solve`].
    ///
    /// Proof mode pins two config axes (see `with_parts`):
    /// `pure_literals` is forced off — monotone-literal fixing assigns
    /// variables with no constraint antecedent, which Q-resolution chains
    /// cannot discharge — and `learning` is forced on, since the
    /// certificate records the learning derivations. The pinning is a
    /// no-op for the default QUBE(TO)/QUBE(PO) learning configurations
    /// apart from the pure-literal axis.
    pub fn with_proof(qbf: &'a Qbf, config: SolverConfig, proof: P) -> Self {
        Solver::with_parts(qbf, config, NoopObserver, proof)
    }
}

impl<'a, M: MetricsSink> Solver<'a, NoopObserver, NoProof, M> {
    /// Prepares a solver that reports phase timings and resource gauges
    /// to `metrics` (see [`crate::metrics`]). Pass `&mut sink` to keep
    /// ownership of the sink across [`Solver::solve`].
    pub fn with_metrics(qbf: &'a Qbf, config: SolverConfig, metrics: M) -> Self {
        Solver::with_instruments(qbf, config, NoopObserver, NoProof, metrics)
    }
}

impl<'a, O: SearchObserver, P: ProofSink> Solver<'a, O, P> {
    /// Observer and proof sink together (metrics stay disabled).
    pub fn with_parts(qbf: &'a Qbf, config: SolverConfig, observer: O, proof: P) -> Self {
        Solver::with_instruments(qbf, config, observer, proof, NoopMetrics)
    }
}

impl<'a, O: SearchObserver, P: ProofSink, M: MetricsSink> Solver<'a, O, P, M> {
    /// Fully general constructor: observer, proof sink and metrics sink.
    pub fn with_instruments(
        qbf: &'a Qbf,
        mut config: SolverConfig,
        observer: O,
        proof: P,
        metrics: M,
    ) -> Self {
        if P::ENABLED {
            // See `with_proof`: certificates require constraint
            // antecedents for every non-decision assignment.
            config.pure_literals = false;
            config.learning = true;
        }
        let n = qbf.num_vars();
        let mut db = Db::new(n);
        let mut active_occ = vec![0u32; 2 * n];
        let mut counts = vec![0.0f64; 2 * n];
        let prefix = qbf.prefix();
        for c in qbf.matrix().iter() {
            // Movable watches rest on existential literals only: sort them
            // first and watch the leading two (or fewer — a clause with a
            // single existential keeps one permanently-stale watch on it,
            // and an all-universal clause is contradictory at the initial
            // scan before any watcher matters).
            let mut lits = c.lits().to_vec();
            lits.sort_by_key(|l| !prefix.is_existential(l.var()));
            let movable = lits
                .iter()
                .take(2)
                .filter(|l| prefix.is_existential(l.var()))
                .count();
            let cref = db.add(lits, Kind::Clause, false, movable, 0, 0);
            attach_unblock_sentinels(&mut db, prefix, cref);
            for &l in c.lits() {
                active_occ[l.code()] += 1;
                counts[l.code()] += 1.0;
            }
        }
        let block_unassigned = prefix
            .blocks()
            .map(|b| prefix.block_vars(b).len() as u32)
            .collect();
        let brancher = Brancher::new(config.heuristic, prefix, &counts);
        let stats = Stats {
            arena_bytes_peak: db.bytes_peak as u64,
            ..Stats::default()
        };
        let mut solver = Solver {
            qbf,
            config,
            db,
            brancher,
            observer,
            proof,
            metrics,
            value: vec![None; n],
            level: vec![0; n],
            reason: vec![Reason::Decision; n],
            trail_pos: vec![0; n],
            trail: Vec::with_capacity(n),
            qhead: 0,
            frames: Vec::new(),
            block_unassigned,
            active_occ,
            pure_candidates: Vec::new(),
            stats,
            conflicts_since_decay: 0,
            analysis_mark: 0,
            lit_mark: vec![false; 2 * n],
            debug_dump: std::env::var_os("QBF_DEBUG").is_some(),
            search_started: false,
            epoch_limit: None,
            stop: None,
            share: None,
            pending_event: None,
        };
        if P::ENABLED {
            solver.proof.begin(qbf);
            let tokens: Vec<u64> = solver.db.original_refs().map(|c| c.token()).collect();
            for t in tokens {
                solver.proof.on_original(t);
            }
        }
        solver
    }

    fn prefix(&self) -> &Prefix {
        self.qbf.prefix()
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.value[l.var().index()].map(|v| v == l.is_positive())
    }

    #[inline]
    fn is_true(&self, l: Lit) -> bool {
        self.lit_value(l) == Some(true)
    }

    #[inline]
    fn is_false(&self, l: Lit) -> bool {
        self.lit_value(l) == Some(false)
    }

    #[inline]
    fn current_level(&self) -> u32 {
        self.frames.len() as u32
    }

    fn is_existential(&self, v: Var) -> bool {
        self.prefix().is_existential(v)
    }

    /// Runs the search to completion or budget exhaustion.
    pub fn solve(mut self) -> Outcome {
        self.solve_mut()
    }

    /// In-place variant of [`Solver::solve`] for callers that keep the
    /// solver alive across queries (incremental solving): the search
    /// state (trail, learned constraints, heuristic scores) survives the
    /// call. Re-running requires a [`Solver::reset_search`] in between.
    pub(crate) fn solve_mut(&mut self) -> Outcome {
        let value = self.run();
        self.outcome(value)
    }

    /// The search loop proper; `None` means the budget ran out.
    fn run(&mut self) -> Option<bool> {
        if !self.search_started {
            self.search_started = true;
            // Initial scan: Lemma 4 / Lemma 5 on the original clauses. In a
            // cold solve only originals exist at this point; on an incremental
            // re-solve the learned constraints are examined lazily through
            // their watchers instead, exactly as after a backtrack to level 0.
            let originals: Vec<ConstraintRef> = self.db.original_refs().collect();
            for c in originals {
                if let Some(Event::Conflict(_)) = self.examine_clause(c) {
                    // The clause has no existential literals: it ∀-reduces to
                    // the empty clause (after resolving out any literals the
                    // scan's earlier unit propagations falsified).
                    if P::ENABLED {
                        let lits = self.db.lits(c).to_vec();
                        self.proof.chain_start(c.token(), &lits, false);
                        self.proof_finish(false);
                    }
                    return Some(false);
                }
            }
            if self.config.pure_literals {
                self.seed_pure_candidates();
            }
        }
        loop {
            if self.budget_exhausted() {
                return None;
            }
            let event = match self.pending_event.take() {
                Some(parked) => Some(parked),
                None => self.propagate_and_fix(),
            };
            match event {
                Some(Event::Conflict(c)) => {
                    self.stats.conflicts += 1;
                    self.observer.on_conflict(self.current_level(), self.trail.len());
                    self.tick_decay();
                    if M::ENABLED {
                        self.metrics.phase_start(Phase::ConflictAnalysis);
                    }
                    let done = self.handle_conflict(c);
                    if M::ENABLED {
                        self.metrics.phase_end(Phase::ConflictAnalysis);
                    }
                    if let Some(v) = done {
                        return Some(v);
                    }
                }
                Some(Event::CubeSolution(k)) => {
                    self.stats.solutions += 1;
                    self.observer.on_solution(self.current_level(), self.trail.len());
                    self.tick_decay();
                    let init = self.db.lits(k).to_vec();
                    if P::ENABLED {
                        self.proof.chain_start(k.token(), &init, true);
                    }
                    self.analysis_mark = 0;
                    if M::ENABLED {
                        self.metrics.phase_start(Phase::SolutionAnalysis);
                    }
                    let done = self.handle_solution(init);
                    if M::ENABLED {
                        self.metrics.phase_end(Phase::SolutionAnalysis);
                    }
                    if let Some(v) = done {
                        return Some(v);
                    }
                }
                None => {
                    if self.drain_imports() {
                        // Imported constraints (and any parked event from
                        // attaching one) must flow through propagation
                        // before the solution trigger or a fresh decision.
                        // Skipping `maybe_reduce_db` here keeps a parked
                        // event's constraint reference stable.
                        continue;
                    }
                    if self.db.unsat_originals == 0 {
                        self.stats.solutions += 1;
                        self.observer.on_solution(self.current_level(), self.trail.len());
                        self.tick_decay();
                        let init = self.matrix_implicant();
                        if P::ENABLED {
                            self.proof.chain_init_cube(&init);
                        }
                        self.analysis_mark = 0;
                        if M::ENABLED {
                            self.metrics.phase_start(Phase::SolutionAnalysis);
                        }
                        let done = self.handle_solution(init);
                        if M::ENABLED {
                            self.metrics.phase_end(Phase::SolutionAnalysis);
                        }
                        if let Some(v) = done {
                            return Some(v);
                        }
                    } else if !self.decide() {
                        // No candidate although clauses remain unsatisfied:
                        // cannot happen (a falsified clause would have
                        // conflicted), but fail safe.
                        debug_assert!(false, "no decision candidates but matrix unsatisfied");
                        return None;
                    }
                }
            }
            self.maybe_reduce_db();
        }
    }

    /// Folds the proof sink's counters into `Stats` and builds the
    /// outcome (the single exit path of [`Solver::solve`]).
    fn outcome(&mut self, value: Option<bool>) -> Outcome {
        if P::ENABLED {
            let (steps, bytes, dels) = self.proof.proof_stats();
            self.stats.proof_steps = steps;
            self.stats.proof_bytes = bytes;
            self.stats.proof_dels = dels;
        }
        Outcome::new(value, self.stats)
    }

    /// Resolves the proof sink's working constraint against the reasons of
    /// the trail suffix `trail[from..]`, latest-assigned first, then
    /// maximally reduces it. A working *clause* depends on a trail literal
    /// `t` through `¬t` and is resolved with `t`'s clause reason; a working
    /// *cube* depends through `t` itself and is resolved with `t`'s cube
    /// reason. Literals without a usable reason (decisions) are left for
    /// the reduction or a later `chain_absorb_frame`.
    fn proof_drain_trail(&mut self, from: usize, cube: bool) {
        let mut i = self.trail.len();
        while i > from {
            i -= 1;
            let t = self.trail[i];
            let pivot = if cube { t } else { !t };
            if !self.proof.working_contains(pivot) {
                continue;
            }
            let Reason::Constraint(r) = self.reason[t.var().index()] else {
                continue;
            };
            let want = if cube { Kind::Cube } else { Kind::Clause };
            if r.kind() != want {
                continue;
            }
            let rl = self.db.lits(r).to_vec();
            self.proof.chain_resolve(self.qbf.prefix(), r.token(), &rl, pivot);
        }
        self.proof.chain_reduce(self.qbf.prefix());
    }

    /// Discharges the residual trail dependencies of the working
    /// constraint and writes the conclusion record. Safe to call at every
    /// terminal site: when the working constraint is already empty the
    /// drain and reduction are no-ops.
    fn proof_finish(&mut self, value: bool) {
        if P::ENABLED {
            self.proof_drain_trail(0, value);
            self.proof.conclude(value);
        }
    }

    fn budget_exhausted(&self) -> bool {
        if let Some(stop) = &self.stop {
            // Relaxed is enough: the flag is a monotonic one-shot latch
            // and the losing workers only need to notice it eventually
            // (the next decision boundary).
            if stop.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(limit) = self.epoch_limit {
            if self.stats.assignments() >= limit {
                return true;
            }
        }
        if let Some(limit) = self.config.node_limit {
            if self.stats.assignments() > limit {
                return true;
            }
        }
        if let Some(limit) = self.config.conflict_limit {
            if self.stats.conflicts + self.stats.solutions > limit {
                return true;
            }
        }
        false
    }

    fn tick_decay(&mut self) {
        self.conflicts_since_decay += 1;
        if self.conflicts_since_decay >= self.config.decay_interval {
            self.conflicts_since_decay = 0;
            self.brancher.decay();
            self.observer.on_decay();
        }
    }

    // ------------------------------------------------------------------
    // Assignment and backtracking
    // ------------------------------------------------------------------

    fn assign(&mut self, lit: Lit, reason: Reason) {
        let v = lit.var();
        debug_assert!(self.value[v.index()].is_none(), "assigning assigned var");
        self.value[v.index()] = Some(lit.is_positive());
        self.level[v.index()] = self.current_level();
        self.reason[v.index()] = reason;
        self.trail_pos[v.index()] = self.trail.len() as u32;
        if let Some(b) = self.prefix().block_of(v) {
            self.block_unassigned[b.index()] -= 1;
        }
        self.trail.push(lit);
        // Satisfaction tracking over *original* clauses only: feeds the
        // solution trigger (`unsat_originals`) and monotone-literal
        // detection. This is off the unit/conflict propagation path, which
        // is fully watcher-driven.
        for i in 0..self.db.occ_original[lit.code()].len() {
            let c = self.db.occ_original[lit.code()][i];
            let tc = self.db.true_count_mut(c);
            *tc += 1;
            if *tc == 1 {
                self.db.unsat_originals -= 1;
                if self.config.pure_literals {
                    for &m in self.db.lits(c) {
                        self.active_occ[m.code()] -= 1;
                        if self.active_occ[m.code()] == 0 {
                            self.pure_candidates.push(m.var());
                        }
                    }
                }
            }
        }
        #[cfg(feature = "debug-counters")]
        self.shadow_assign(lit);
    }

    /// Pops the topmost decision level. Watcher lists are deliberately
    /// **not** touched: stale watches are legal (see the module docs).
    fn backtrack_one(&mut self) {
        if P::ENABLED {
            self.proof.frame_pop();
        }
        let frame = self.frames.pop().expect("backtrack with empty stack");
        while self.trail.len() > frame.trail_start {
            let l = self.trail.pop().expect("trail_start within trail");
            self.unassign(l);
        }
        self.qhead = self.trail.len();
    }

    fn unassign(&mut self, l: Lit) {
        let v = l.var();
        self.value[v.index()] = None;
        if let Some(b) = self.prefix().block_of(v) {
            self.block_unassigned[b.index()] += 1;
        }
        // Reverse the satisfaction tracking of `assign`. No per-constraint
        // work happens for the clause/cube *propagation* state: watchers
        // are backtrack-invariant.
        for i in 0..self.db.occ_original[l.code()].len() {
            let c = self.db.occ_original[l.code()][i];
            let tc = self.db.true_count_mut(c);
            *tc -= 1;
            if *tc == 0 {
                self.db.unsat_originals += 1;
                if self.config.pure_literals {
                    for &m in self.db.lits(c) {
                        self.active_occ[m.code()] += 1;
                    }
                }
            }
        }
        // A variable that is monotone *right now* becomes fixable again the
        // moment it is unassigned; the transition-triggered queue alone
        // would miss it (its candidate entry may have been consumed while
        // it was assigned).
        if self.config.pure_literals
            && (self.active_occ[v.positive().code()] == 0
                || self.active_occ[v.negative().code()] == 0)
        {
            self.pure_candidates.push(v);
        }
        // The variable is branchable again: re-enter it into its block's
        // lazy decision heap (no-op for scan-based heuristics).
        self.brancher.on_unassign(v);
        #[cfg(feature = "debug-counters")]
        self.shadow_unassign(l);
    }

    fn push_decision(&mut self, lit: Lit, flipped: bool, pseudo_reason: Option<ConstraintRef>) {
        if P::ENABLED {
            // Record how a later unwinding can discharge this frame: a
            // flipped decision carries the refutation of its first phase —
            // either a learned constraint (token shadow) or the analysis
            // working set of the chronological flip (working shadow).
            match (flipped, pseudo_reason) {
                (true, Some(pr)) => {
                    let pl = self.db.lits(pr).to_vec();
                    self.proof
                        .frame_push_token(pr.token(), &pl, pr.kind() == Kind::Cube);
                }
                (true, None) => self.proof.frame_push_working(),
                _ => self.proof.frame_push(),
            }
        }
        self.frames.push(Frame {
            lit,
            flipped,
            pseudo_reason,
            trail_start: self.trail.len(),
        });
        self.stats.decisions += 1;
        self.assign(lit, Reason::Decision);
        let score = self.brancher.score_of(lit);
        self.observer
            .on_decision(lit, self.current_level(), self.trail.len(), flipped, score);
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    /// Propagates to fixpoint, interleaving monotone-literal fixing.
    fn propagate_and_fix(&mut self) -> Option<Event> {
        if M::ENABLED {
            self.metrics.phase_start(Phase::Propagate);
        }
        let ev = self.propagate_and_fix_inner();
        if M::ENABLED {
            self.metrics.phase_end(Phase::Propagate);
        }
        ev
    }

    fn propagate_and_fix_inner(&mut self) -> Option<Event> {
        loop {
            if let Some(ev) = self.propagate() {
                return Some(ev);
            }
            if !self.config.pure_literals || !self.fix_one_pure() {
                #[cfg(feature = "debug-counters")]
                self.shadow_verify();
                return None;
            }
        }
    }

    fn propagate(&mut self) -> Option<Event> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses progress towards unit/conflict when ¬l is falsified…
            if let Some(ev) = self.propagate_clause_watches(!l) {
                return Some(ev);
            }
            // …cubes progress towards unit/solution when l is satisfied.
            if let Some(ev) = self.propagate_cube_watches(l) {
                return Some(ev);
            }
        }
        None
    }

    /// Visits the watchers of `p`, which has just become **false**.
    ///
    /// Pinned unblock sentinels are examined in place. For movable
    /// watches: resolve via the blocker if it satisfies the clause, move
    /// the watch to another non-false *existential* literal if one
    /// exists, and otherwise keep it (stale) and examine the clause under
    /// Lemma 4/5. On an event the remaining watchers are kept verbatim:
    /// the event handler pops the current level, which unassigns `p`
    /// itself.
    fn propagate_clause_watches(&mut self, p: Lit) -> Option<Event> {
        let mut ws = std::mem::take(&mut self.db.watch_clause[p.code()]);
        let mut kept = 0usize;
        let mut event: Option<Event> = None;
        let mut i = 0;
        while i < ws.len() {
            let w = ws[i];
            i += 1;
            self.stats.watcher_visits += 1;
            self.observer.on_watcher_visit();
            // Fast path: some other literal already satisfies the clause —
            // resolved from the watcher entry alone, no arena access.
            if self.is_true(w.blocker()) {
                self.stats.blocker_hits += 1;
                self.observer.on_blocker_hit();
                ws[kept] = w;
                kept += 1;
                continue;
            }
            let c = w.cref;
            if self.db.is_deleted(c) {
                continue; // lazily drop watchers of deleted constraints
            }
            if w.pinned() || self.db.len(c) == 1 {
                // Pinned: an outer universal blocking some existential of
                // this clause has just been falsified — the clause may
                // have become unit (Lemma 5 unblocking). Unit constraint:
                // p false falsifies it. Both keep their watcher in place.
                ws[kept] = w;
                kept += 1;
                event = self.examine_clause(c);
            } else {
                // Normalize so the fired watch sits at position 1.
                if self.db.lit(c, 0) == p {
                    self.db.swap_lits(c, 0, 1);
                }
                debug_assert_eq!(self.db.lit(c, 1), p, "watcher list out of sync");
                let other = self.db.lit(c, 0);
                if self.is_true(other) {
                    ws[kept] = Watcher::new(c, other, false);
                    kept += 1;
                    continue;
                }
                // Replacement search over the unwatched tail: only a
                // non-false *existential* restores the movable-watch
                // invariant (see the module docs — watches must stay on
                // the existential subsequence to survive backtracking).
                let mut found: Option<usize> = None;
                for (k, &m) in self.db.lits(c).iter().enumerate().skip(2) {
                    if self.is_existential(m.var()) && !self.is_false(m) {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    self.db.swap_lits(c, 1, k);
                    let m = self.db.lit(c, 1);
                    self.db.watch_clause[m.code()].push(Watcher::new(c, other, false));
                    continue; // watcher moved off p's list
                }
                // No existential replacement: at most one non-false
                // existential remains (`other`, if it is one), so the
                // clause is satisfied by an unwatched universal,
                // conflicting, unit, or ≺-blocked — exactly what
                // `examine_clause` decides. The stale watch stays on p
                // and comes back to life in unassignment order.
                ws[kept] = Watcher::new(c, other, false);
                kept += 1;
                event = self.examine_clause(c);
            }
            if event.is_some() {
                while i < ws.len() {
                    ws[kept] = ws[i];
                    kept += 1;
                    i += 1;
                }
                break;
            }
        }
        ws.truncate(kept);
        debug_assert!(self.db.watch_clause[p.code()].is_empty());
        self.db.watch_clause[p.code()] = ws;
        event
    }

    /// Dual of [`Solver::propagate_clause_watches`]: visits the cubes
    /// watching `p`, which has just become **true**.
    ///
    /// Pinned unblock sentinels (outer existentials blocking some
    /// universal of the cube) are examined in place. Movable watches rest
    /// only on *universal* literals: resolve via the blocker if it
    /// disables the cube, move to another non-true universal if one
    /// exists, and otherwise keep the watch (stale) and examine the cube.
    fn propagate_cube_watches(&mut self, p: Lit) -> Option<Event> {
        let mut ws = std::mem::take(&mut self.db.watch_cube[p.code()]);
        let mut kept = 0usize;
        let mut event: Option<Event> = None;
        let mut i = 0;
        while i < ws.len() {
            let w = ws[i];
            i += 1;
            self.stats.watcher_visits += 1;
            self.observer.on_watcher_visit();
            // Fast path: some other literal already disables the cube —
            // resolved from the watcher entry alone, no arena access.
            if self.is_false(w.blocker()) {
                self.stats.blocker_hits += 1;
                self.observer.on_blocker_hit();
                ws[kept] = w;
                kept += 1;
                continue;
            }
            let c = w.cref;
            if self.db.is_deleted(c) {
                continue; // lazily drop watchers of deleted constraints
            }
            if w.pinned() || self.db.len(c) == 1 {
                // Pinned: an outer existential blocking some universal of
                // this cube has just been satisfied — the cube may have
                // become unit (dual unblocking). Unit constraint: p true
                // makes it a solution. Both keep their watcher in place.
                ws[kept] = w;
                kept += 1;
                event = self.examine_cube(c);
            } else {
                // Normalize so the fired watch sits at position 1.
                if self.db.lit(c, 0) == p {
                    self.db.swap_lits(c, 0, 1);
                }
                debug_assert_eq!(self.db.lit(c, 1), p, "cube watcher list out of sync");
                let other = self.db.lit(c, 0);
                if self.is_false(other) {
                    ws[kept] = Watcher::new(c, other, false);
                    kept += 1;
                    continue;
                }
                // Replacement search over the unwatched tail: only a
                // non-true *universal* restores the movable-watch
                // invariant (dual of the clause case — watches must stay
                // on the universal subsequence to survive backtracking).
                let mut found: Option<usize> = None;
                for (k, &m) in self.db.lits(c).iter().enumerate().skip(2) {
                    if !self.is_existential(m.var()) && !self.is_true(m) {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    self.db.swap_lits(c, 1, k);
                    let m = self.db.lit(c, 1);
                    self.db.watch_cube[m.code()].push(Watcher::new(c, other, false));
                    continue; // watcher moved off p's list
                }
                // No universal replacement: at most one non-true universal
                // remains (`other`, if it is one), so the cube is disabled
                // by an unwatched existential, a solution, unit, or
                // ≺-blocked — exactly what `examine_cube` decides. The
                // stale watch stays on p and comes back to life in
                // unassignment order.
                ws[kept] = Watcher::new(c, other, false);
                kept += 1;
                event = self.examine_cube(c);
            }
            if event.is_some() {
                while i < ws.len() {
                    ws[kept] = ws[i];
                    kept += 1;
                    i += 1;
                }
                break;
            }
        }
        ws.truncate(kept);
        debug_assert!(self.db.watch_cube[p.code()].is_empty());
        self.db.watch_cube[p.code()] = ws;
        event
    }

    /// Checks a clause that is not (yet) known satisfied: Lemma 4 conflict
    /// or Lemma 5 unit.
    fn examine_clause(&mut self, c: ConstraintRef) -> Option<Event> {
        let mut unit: Option<Lit> = None;
        let mut existentials = 0u32;
        // First pass: find unassigned existential literals; a true literal
        // (possibly still pending on the trail) means the clause is
        // satisfied.
        for &m in self.db.lits(c) {
            if self.is_true(m) {
                return None;
            }
            if self.lit_value(m).is_some() {
                continue;
            }
            if self.is_existential(m.var()) {
                existentials += 1;
                if existentials > 1 {
                    return None;
                }
                unit = Some(m);
            }
        }
        match unit {
            None => Some(Event::Conflict(c)),
            Some(e) => {
                // Generalized Lemma 5: unassigned universal literals must
                // not precede e.
                for &m in self.db.lits(c) {
                    if m == e || self.lit_value(m).is_some() {
                        continue;
                    }
                    if self.prefix().precedes(m.var(), e.var()) {
                        return None;
                    }
                }
                self.stats.propagations += 1;
                self.assign(e, Reason::Constraint(c));
                self.observer.on_propagation(
                    e,
                    self.current_level(),
                    self.trail.len(),
                    PropagationKind::UnitClause,
                );
                None
            }
        }
    }

    /// Checks a cube that is not (yet) known disabled: solution trigger or
    /// dual unit.
    fn examine_cube(&mut self, c: ConstraintRef) -> Option<Event> {
        let mut unit: Option<Lit> = None;
        let mut universals = 0u32;
        for &m in self.db.lits(c) {
            if self.is_false(m) {
                return None;
            }
            if self.lit_value(m).is_some() {
                continue;
            }
            if !self.is_existential(m.var()) {
                universals += 1;
                if universals > 1 {
                    return None;
                }
                unit = Some(m);
            }
        }
        match unit {
            // A cube whose unassigned literals are all existential is a
            // validated good: the formula is true under the assignment.
            None => Some(Event::CubeSolution(c)),
            Some(u) => {
                for &m in self.db.lits(c) {
                    if m == u || self.lit_value(m).is_some() {
                        continue;
                    }
                    if self.prefix().precedes(m.var(), u.var()) {
                        return None;
                    }
                }
                // The ∀-player must falsify the cube: assign ¬u.
                self.stats.propagations += 1;
                self.assign(!u, Reason::Constraint(c));
                self.observer.on_propagation(
                    !u,
                    self.current_level(),
                    self.trail.len(),
                    PropagationKind::UnitCube,
                );
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Monotone literals
    // ------------------------------------------------------------------

    fn seed_pure_candidates(&mut self) {
        for i in 0..self.qbf.num_vars() {
            let v = Var::new(i);
            if self.active_occ[v.positive().code()] == 0
                || self.active_occ[v.negative().code()] == 0
            {
                self.pure_candidates.push(v);
            }
        }
    }

    /// Fixes at most one verified monotone literal; returns whether one was
    /// fixed (caller re-propagates).
    fn fix_one_pure(&mut self) -> bool {
        while let Some(v) = self.pure_candidates.pop() {
            if self.value[v.index()].is_some() {
                continue;
            }
            let Some(q) = self.prefix().quant(v) else {
                continue;
            };
            let pos_active = self.active_occ[v.positive().code()];
            let neg_active = self.active_occ[v.negative().code()];
            if pos_active != 0 && neg_active != 0 {
                continue; // stale candidate
            }
            let lit = if q.is_exists() {
                // assign l with ¬l absent: satisfy remaining occurrences
                if neg_active == 0 {
                    v.positive()
                } else {
                    v.negative()
                }
            } else {
                // assign l with l absent: shrink remaining occurrences
                if pos_active == 0 {
                    v.positive()
                } else {
                    v.negative()
                }
            };
            self.stats.pures += 1;
            self.assign(lit, Reason::Pure);
            self.observer.on_propagation(
                lit,
                self.current_level(),
                self.trail.len(),
                PropagationKind::Pure,
            );
            return true;
        }
        false
    }

    // ------------------------------------------------------------------
    // Decisions
    // ------------------------------------------------------------------

    /// Collects available unassigned variables: every `≺`-predecessor (i.e.
    /// every variable in a strict ancestor block) is assigned.
    fn candidates(&self) -> Vec<Var> {
        let prefix = self.prefix();
        let mut cands = Vec::new();
        let mut stack: Vec<BlockId> = prefix.roots().to_vec();
        while let Some(b) = stack.pop() {
            let unassigned = self.block_unassigned[b.index()];
            if unassigned > 0 {
                for &v in prefix.block_vars(b) {
                    if self.value[v.index()].is_none() {
                        cands.push(v);
                    }
                }
                // children unavailable until this block is complete
                continue;
            }
            stack.extend(prefix.block_children(b).iter().copied());
        }
        cands
    }

    /// Collects the available *blocks* (same walk as [`Solver::candidates`]
    /// without expanding to variables): blocks with an unassigned variable
    /// whose ancestor blocks are all complete.
    fn available_blocks(&self) -> Vec<BlockId> {
        let prefix = self.prefix();
        let mut blocks = Vec::new();
        let mut stack: Vec<BlockId> = prefix.roots().to_vec();
        while let Some(b) = stack.pop() {
            if self.block_unassigned[b.index()] > 0 {
                blocks.push(b);
                // children unavailable until this block is complete
                continue;
            }
            stack.extend(prefix.block_children(b).iter().copied());
        }
        blocks
    }

    /// Picks and assigns a branching literal; `false` if none is available.
    ///
    /// Scored heuristics pick incrementally from the per-block lazy heaps
    /// (no O(candidates) scan); `Random` keeps the scan path because its
    /// choice is positional in the candidate vector.
    fn decide(&mut self) -> bool {
        let lit = if self.brancher.uses_heaps() {
            let blocks = self.available_blocks();
            let lit = self
                .brancher
                .pick_incremental(self.qbf.prefix(), &blocks, &self.value);
            // Debug builds cross-check every incremental pick against the
            // legacy full scan, so the differential suite doubles as a
            // heap-vs-scan equivalence proof.
            #[cfg(debug_assertions)]
            {
                let cands = self.candidates();
                let scan = self.brancher.pick(self.qbf.prefix(), &cands);
                debug_assert_eq!(lit, scan, "incremental pick diverged from the scan");
            }
            lit
        } else {
            let cands = self.candidates();
            self.brancher.pick(self.qbf.prefix(), &cands)
        };
        match lit {
            None => false,
            Some(lit) => {
                if M::ENABLED {
                    // Resource gauges are sampled at decision boundaries:
                    // frequent enough for a time-series, far off the
                    // propagation hot path.
                    self.metrics.sample(EngineGauge::ArenaBytes, self.db.arena_bytes() as u64);
                    self.metrics.sample(
                        EngineGauge::LearnedConstraints,
                        (self.db.num_learned_clauses + self.db.num_learned_cubes) as u64,
                    );
                    self.metrics.sample(EngineGauge::TrailDepth, self.trail.len() as u64);
                }
                self.push_decision(lit, false, None);
                true
            }
        }
    }

    // ------------------------------------------------------------------
    // Conflict analysis (nogood learning)
    // ------------------------------------------------------------------

    /// Handles a conflict; `Some(value)` ends the search.
    fn handle_conflict(&mut self, conflict: ConstraintRef) -> Option<bool> {
        if !self.config.learning {
            return self.chrono_conflict();
        }
        let mut lits = self.db.lits(conflict).to_vec();
        if P::ENABLED {
            self.proof.chain_start(conflict.token(), &lits, false);
        }
        self.analysis_mark = self.db.frame_mark(conflict);
        self.resolve_existentials(&mut lits);
        self.universal_reduce(&mut lits);
        if P::ENABLED {
            self.proof.chain_reduce(self.qbf.prefix());
        }
        if lits.is_empty() {
            self.proof_finish(false);
            return Some(false);
        }
        let cref = self.learn(lits.clone(), Kind::Clause);
        self.unwind_conflict(lits, cref)
    }

    /// Resolves away every existential literal that has a clause reason,
    /// latest-assigned first, skipping steps that would produce a
    /// tautological or satisfied resolvent.
    fn resolve_existentials(&mut self, lits: &mut Vec<Lit>) {
        // `lit_mark` mirrors the content of `lits` throughout so the
        // membership tests below are O(1) instead of a scan per reason
        // literal; `skipped` doubles as the list of marks to clear.
        for &l in lits.iter() {
            self.lit_mark[l.code()] = true;
        }
        let mut skipped: Vec<Lit> = Vec::new();
        loop {
            // Pick the resolvable pivot assigned latest on the trail.
            let mut pivot: Option<(usize, Lit, ConstraintRef)> = None;
            for &m in lits.iter() {
                let v = m.var();
                if !self.is_false(m) || !self.is_existential(v) || skipped.contains(&m) {
                    continue;
                }
                let Reason::Constraint(r) = self.reason[v.index()] else {
                    continue;
                };
                if r.kind() != Kind::Clause {
                    continue;
                }
                let pos = self.trail_pos[v.index()] as usize;
                if pivot.is_none_or(|(p, _, _)| pos > p) {
                    pivot = Some((pos, m, r));
                }
            }
            let Some((_, m, r)) = pivot else { break };
            // Check the reason's side literals.
            let reason_lits = self.db.lits(r);
            let mut ok = true;
            for &x in reason_lits {
                if x == !m {
                    continue;
                }
                if self.is_true(x) || self.lit_mark[(!x).code()] {
                    ok = false;
                    break;
                }
            }
            if !ok {
                skipped.push(m);
                continue;
            }
            lits.retain(|&y| y != m);
            self.lit_mark[m.code()] = false;
            for k in 0..self.db.len(r) {
                let x = self.db.lit(r, k);
                if x != !m && !self.lit_mark[x.code()] {
                    self.lit_mark[x.code()] = true;
                    lits.push(x);
                }
            }
            // The step actually used `r`: the learned clause inherits its
            // frame dependencies (skipped steps leave the pivot in place,
            // so the clause stays derivable without the skipped reason).
            self.analysis_mark = self.analysis_mark.max(self.db.frame_mark(r));
            if P::ENABLED {
                let rl = self.db.lits(r).to_vec();
                self.proof.chain_resolve(self.qbf.prefix(), r.token(), &rl, m);
            }
        }
        for &l in lits.iter() {
            self.lit_mark[l.code()] = false;
        }
    }

    /// Lemma 3: removes universal literals not preceding any existential
    /// literal of the clause.
    fn universal_reduce(&self, lits: &mut Vec<Lit>) {
        let existentials: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|&v| self.is_existential(v))
            .collect();
        lits.retain(|&u| {
            self.is_existential(u.var())
                || existentials
                    .iter()
                    .any(|&e| self.prefix().precedes(u.var(), e))
        });
    }

    /// Dual of Lemma 3 for cubes: removes existential literals not
    /// preceding any universal literal of the cube.
    fn existential_reduce(&self, lits: &mut Vec<Lit>) {
        let universals: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|&v| !self.is_existential(v))
            .collect();
        lits.retain(|&e| {
            !self.is_existential(e.var())
                || universals
                    .iter()
                    .any(|&u| self.prefix().precedes(e.var(), u))
        });
    }

    fn learn(&mut self, mut lits: Vec<Lit>, kind: Kind) -> ConstraintRef {
        // Watch ordering: `Db::add` attaches movable watchers to the
        // first (up to) two positions, and movable watches must rest on
        // the constraint's *relevant* quantifier (existential for
        // clauses, universal for cubes; see the module docs). So sort the
        // relevant-quantifier literals first, and within them place the
        // literals that will be unassigned *last* by the upcoming unwind
        // up front — currently-unassigned literals first, then by
        // descending trail position. This generalizes the classic "watch
        // the two highest decision levels" rule and keeps the learned
        // constraint's unit status detectable after backtracking.
        lits.sort_by_key(|l| {
            let wrong_type = match kind {
                Kind::Clause => !self.is_existential(l.var()),
                Kind::Cube => self.is_existential(l.var()),
            };
            let pos_key = match self.value[l.var().index()] {
                None => i64::MIN,
                Some(_) => -(self.trail_pos[l.var().index()] as i64),
            };
            (wrong_type, pos_key)
        });
        let movable = lits
            .iter()
            .take(2)
            .filter(|l| match kind {
                Kind::Clause => self.is_existential(l.var()),
                Kind::Cube => !self.is_existential(l.var()),
            })
            .count();
        // Shadow counters reflect *all* current assignments: the shadow
        // discipline updates counters at assign time (trail push), not at
        // propagation-queue processing time.
        let mut t = 0;
        let mut f = 0;
        for &l in &lits {
            match self.lit_value(l) {
                Some(true) => t += 1,
                Some(false) => f += 1,
                None => {}
            }
        }
        self.brancher.on_learn(&lits);
        match kind {
            Kind::Clause => self.stats.learned_clauses += 1,
            Kind::Cube => self.stats.learned_cubes += 1,
        }
        // Asserting level for the observer: the second-highest distinct
        // decision level among the constraint's assigned literals — the
        // deepest level the unwind could jump back to while keeping the
        // constraint unit (0 when all literals share one level).
        let (mut highest, mut second) = (0u32, 0u32);
        for &l in &lits {
            if self.lit_value(l).is_none() {
                continue;
            }
            let lv = self.level[l.var().index()];
            if lv > highest {
                second = highest;
                highest = lv;
            } else if lv < highest && lv > second {
                second = lv;
            }
        }
        let lkind = match kind {
            Kind::Clause => LearnedKind::Clause,
            Kind::Cube => LearnedKind::Cube,
        };
        self.observer.on_learned(lkind, lits.len(), second);
        let cref = self.db.add(lits, kind, true, movable, t, f);
        self.stats.arena_bytes_peak = self.stats.arena_bytes_peak.max(self.db.bytes_peak as u64);
        attach_unblock_sentinels(&mut self.db, self.qbf.prefix(), cref);
        self.db.set_activity(cref, self.stats.conflicts as f64);
        // Incremental frame dependency of the derivation accumulated by
        // the current analysis (always 0 for cubes and in one-shot mode).
        self.db.set_frame_mark(cref, self.analysis_mark);
        if P::ENABLED {
            let ll = self.db.lits(cref).to_vec();
            self.proof.chain_learn(cref.token(), &ll);
        }
        if self.share.is_some() {
            // Offer the (possibly strengthened) stored form to the
            // portfolio pool; the connection applies the length filter
            // and, in deterministic mode, defers publication to the
            // epoch barrier. Only own derivations reach this point —
            // imports attach via `import_constraint`, so nothing is ever
            // re-exported.
            let ll = self.db.lits(cref).to_vec();
            let cube = kind == Kind::Cube;
            if let Some(conn) = self.share.as_deref_mut() {
                conn.offer(&ll, cube);
            }
        }
        cref
    }

    // ------------------------------------------------------------------
    // Portfolio hooks: cancellation, epoch stepping and constraint import
    // ------------------------------------------------------------------

    /// Installs a cooperative cancellation flag. Once any thread stores
    /// `true`, the next decision boundary (top of the search loop) makes
    /// the solver return a budget outcome (`Outcome::value() == None`),
    /// so a worker observes cancellation within one
    /// conflict/solution/decision step.
    pub fn set_stop_flag(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Attaches a portfolio sharing connection. Sharing is incompatible
    /// with proof logging (imported constraints have no local
    /// derivation), which the portfolio driver enforces; debug-assert it
    /// here too.
    pub(crate) fn attach_share(&mut self, conn: Box<ShareConn>) {
        debug_assert!(!P::ENABLED, "constraint sharing under proof logging");
        self.share = Some(conn);
    }

    /// The sharing connection, if any (the portfolio driver reads its
    /// outbox and counters between epochs).
    pub(crate) fn share_conn_mut(&mut self) -> Option<&mut ShareConn> {
        self.share.as_deref_mut()
    }

    /// Sets the inclusive assignment-count pause point for deterministic
    /// epoch stepping (see the `epoch_limit` field).
    pub(crate) fn set_epoch_limit(&mut self, limit: Option<u64>) {
        self.epoch_limit = limit;
    }

    /// The statistics accumulated so far (the portfolio driver reports
    /// per-worker stats even for workers that never finish a `solve_mut`
    /// call normally).
    pub(crate) fn current_stats(&self) -> Stats {
        self.stats
    }

    /// Decision-boundary import point: attaches every constraint staged
    /// by the sharing layer and returns whether anything was attached
    /// (the caller then re-enters propagation before deciding). Stops
    /// early when an attached constraint immediately conflicts or
    /// validates, parking the event in `pending_event`; the remaining
    /// staged imports survive until the next boundary.
    fn drain_imports(&mut self) -> bool {
        if self.share.is_none() {
            return false;
        }
        if let Some(conn) = self.share.as_deref_mut() {
            conn.poll();
        }
        let mut attached = false;
        loop {
            let next = self.share.as_deref_mut().and_then(ShareConn::take_staged);
            let Some((lits, cube)) = next else {
                break;
            };
            let kind = if cube { Kind::Cube } else { Kind::Clause };
            let cref = self.import_constraint(lits, kind);
            attached = true;
            let event = match kind {
                Kind::Clause => self.examine_clause(cref),
                Kind::Cube => self.examine_cube(cref),
            };
            if let Some(ev) = event {
                self.pending_event = Some(ev);
                break;
            }
        }
        attached
    }

    /// Adds one imported (peer-learned) constraint to the database with
    /// exactly the watch ordering, sentinels and metadata `learn` would
    /// give a local derivation — but without touching the learned-count
    /// statistics or the proof log: imports are the *exporter's*
    /// derivations, accounted by the sharing connection instead. Any
    /// unit propagation it triggers is assigned at the current decision
    /// level, so a later unwind retracts it like any other propagation.
    fn import_constraint(&mut self, mut lits: Vec<Lit>, kind: Kind) -> ConstraintRef {
        lits.sort_by_key(|l| {
            let wrong_type = match kind {
                Kind::Clause => !self.is_existential(l.var()),
                Kind::Cube => self.is_existential(l.var()),
            };
            let pos_key = match self.value[l.var().index()] {
                None => i64::MIN,
                Some(_) => -(self.trail_pos[l.var().index()] as i64),
            };
            (wrong_type, pos_key)
        });
        let movable = lits
            .iter()
            .take(2)
            .filter(|l| match kind {
                Kind::Clause => self.is_existential(l.var()),
                Kind::Cube => !self.is_existential(l.var()),
            })
            .count();
        // Shadow counters (debug-counters) demand exact truth counts
        // under the *current* assignment, like `learn` computes them.
        let mut t = 0;
        let mut f = 0;
        for &l in &lits {
            match self.lit_value(l) {
                Some(true) => t += 1,
                Some(false) => f += 1,
                None => {}
            }
        }
        self.brancher.on_learn(&lits);
        let cref = self.db.add(lits, kind, true, movable, t, f);
        self.stats.arena_bytes_peak = self.stats.arena_bytes_peak.max(self.db.bytes_peak as u64);
        attach_unblock_sentinels(&mut self.db, self.qbf.prefix(), cref);
        self.db.set_activity(cref, self.stats.conflicts as f64);
        // Imports are consequences of the shared bottom-frame matrix
        // only (the portfolio never runs under push frames).
        self.db.set_frame_mark(cref, 0);
        cref
    }

    /// Unwinds the decision stack guided by a learned (falsified) clause.
    fn unwind_conflict(&mut self, mut lits: Vec<Lit>, mut cref: ConstraintRef) -> Option<bool> {
        let mut dirty = false;
        loop {
            if self.frames.is_empty() {
                self.proof_finish(false);
                return Some(false);
            }
            let k = self.current_level();
            let frame = *self.frames.last().expect("non-empty stack");
            let d = frame.lit;
            // Count the level-k literals without materializing them; only
            // the count and the first hit are ever consulted.
            let mut at_k = 0usize;
            let mut at_k_first = d;
            for &m in lits.iter() {
                if self.lit_value(m).is_some() && self.level[m.var().index()] == k {
                    if at_k == 0 {
                        at_k_first = m;
                    }
                    at_k += 1;
                }
            }
            if at_k == 0 {
                // The conflict does not depend on level k at all.
                self.stats.backjumps += 1;
                self.backtrack_one();
                self.observer.on_backjump(k, self.current_level());
                continue;
            }
            if at_k == 1 && at_k_first == !d {
                if self.is_existential(d.var()) {
                    if !frame.flipped {
                        if dirty {
                            cref = self.learn(lits.clone(), Kind::Clause);
                        }
                        self.backtrack_one();
                        if self.constraint_unit_for(&lits, !d) {
                            self.stats.propagations += 1;
                            self.assign(!d, Reason::Constraint(cref));
                            self.observer.on_propagation(
                                !d,
                                self.current_level(),
                                self.trail.len(),
                                PropagationKind::UnitClause,
                            );
                        } else {
                            self.push_decision(!d, true, Some(cref));
                        }
                        return None;
                    }
                    // Both branches of d failed: combine with the clause
                    // that refuted the first branch, if resolution is legal.
                    if let Some(pr) = frame.pseudo_reason {
                        if let Some(mut combined) = self.try_resolve_clause(&lits, pr, d) {
                            self.analysis_mark = self.analysis_mark.max(self.db.frame_mark(pr));
                            if P::ENABLED {
                                let pl = self.db.lits(pr).to_vec();
                                self.proof.chain_resolve(self.qbf.prefix(), pr.token(), &pl, !d);
                            }
                            self.universal_reduce(&mut combined);
                            if P::ENABLED {
                                self.proof.chain_reduce(self.qbf.prefix());
                            }
                            if combined.is_empty() {
                                self.proof_finish(false);
                                return Some(false);
                            }
                            lits = combined;
                            dirty = true;
                            self.stats.backjumps += 1;
                            self.backtrack_one();
                            self.observer.on_backjump(k, self.current_level());
                            continue;
                        }
                    }
                    return self.chrono_conflict();
                }
                // Universal decision: a false branch falsifies the node.
                // Keep unwinding with the clause only if ¬d reduces out.
                let rest: Vec<Lit> = lits.iter().copied().filter(|&m| m != !d).collect();
                let reducible = !rest
                    .iter()
                    .any(|&e| self.is_existential(e.var()) && self.prefix().precedes(d.var(), e.var()));
                if reducible {
                    lits = rest;
                    if P::ENABLED {
                        self.proof.chain_remove(self.qbf.prefix(), !d);
                    }
                    if lits.is_empty() {
                        self.proof_finish(false);
                        return Some(false);
                    }
                    dirty = true;
                    self.stats.backjumps += 1;
                    self.backtrack_one();
                    self.observer.on_backjump(k, self.current_level());
                    continue;
                }
                return self.chrono_conflict();
            }
            // Other level-k literals block backjumping past this level.
            return self.chrono_conflict();
        }
    }

    /// Q-resolution of `lits` with constraint `pr` on existential pivot
    /// `d`; `None` if the step would be tautological or pull in a satisfied
    /// literal.
    fn try_resolve_clause(&self, lits: &[Lit], pr: ConstraintRef, d: Lit) -> Option<Vec<Lit>> {
        // `lits` falsifies the flipped branch (it contains ¬d where d is the
        // flipped decision literal); `pr` refuted the first branch, so it
        // contains d itself.
        let reason = self.db.lits(pr);
        if !reason.contains(&d) {
            return None;
        }
        let mut out: Vec<Lit> = lits.iter().copied().filter(|&m| m != d && m != !d).collect();
        for &x in reason {
            if x == !d || x == d {
                continue;
            }
            if self.is_true(x) || out.contains(&!x) {
                return None;
            }
            if !out.contains(&x) {
                out.push(x);
            }
        }
        Some(out)
    }

    /// Whether the clause would imply `target` right now: every other
    /// literal false, except unassigned universals that do not precede it.
    fn constraint_unit_for(&self, lits: &[Lit], target: Lit) -> bool {
        for &m in lits {
            if m == target {
                continue;
            }
            match self.lit_value(m) {
                Some(false) => {}
                Some(true) => return false,
                None => {
                    if self.is_existential(m.var())
                        || self.prefix().precedes(m.var(), target.var())
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Chronological fallback on conflicts: flip the most recent unflipped
    /// existential decision (universal nodes are false as soon as one
    /// branch is).
    fn chrono_conflict(&mut self) -> Option<bool> {
        self.stats.chrono_backtracks += 1;
        let from = self.current_level();
        loop {
            let Some(frame) = self.frames.last().copied() else {
                self.observer.on_chrono_backtrack(from, 0);
                self.proof_finish(false);
                return Some(false);
            };
            if self.is_existential(frame.lit.var()) && !frame.flipped {
                let d = frame.lit;
                // Discharge the frame's propagations so the working clause
                // depends on level k only through the decision itself; the
                // flip then carries it as its shadow refutation.
                if P::ENABLED {
                    self.proof_drain_trail(frame.trail_start + 1, false);
                }
                self.backtrack_one();
                self.observer.on_chrono_backtrack(from, self.current_level());
                self.push_decision(!d, true, None);
                return None;
            }
            if P::ENABLED {
                self.proof_drain_trail(frame.trail_start + 1, false);
                self.proof.chain_absorb_frame(
                    self.qbf.prefix(),
                    frame.lit,
                    self.is_existential(frame.lit.var()),
                );
            }
            self.backtrack_one();
        }
    }

    // ------------------------------------------------------------------
    // Solution analysis (good learning)
    // ------------------------------------------------------------------

    /// Builds an implicant of the original matrix from the current
    /// assignment (model generation): one true literal per clause,
    /// preferring inner existential literals so that existential reduction
    /// shrinks the good (cf. the §VII-C discussion of PO goods).
    fn matrix_implicant(&mut self) -> Vec<Lit> {
        // `lit_mark` mirrors `chosen` so the already-covered test is O(1)
        // per literal instead of a scan of the chosen set per clause.
        let mut chosen: Vec<Lit> = Vec::new();
        for c in self.db.original_refs() {
            debug_assert!(!self.db.is_learned(c));
            let lits = self.db.lits(c);
            if lits.iter().any(|&l| self.lit_mark[l.code()]) {
                continue;
            }
            let best = lits
                .iter()
                .copied()
                .filter(|&l| self.is_true(l))
                .max_by_key(|&l| {
                    // Existential literals first (inner ones reduce away
                    // entirely); among universal literals prefer the
                    // earliest-assigned so the learned good enables deep
                    // backjumps.
                    if self.is_existential(l.var()) {
                        (1, self.prefix().level(l.var()).unwrap_or(u32::MAX) as i64)
                    } else {
                        (0, -(self.trail_pos[l.var().index()] as i64))
                    }
                })
                .expect("solution trigger requires every original clause satisfied");
            self.lit_mark[best.code()] = true;
            chosen.push(best);
        }
        for &l in chosen.iter() {
            self.lit_mark[l.code()] = false;
        }
        chosen
    }

    /// Handles a solution trigger; `Some(value)` ends the search.
    fn handle_solution(&mut self, mut lits: Vec<Lit>) -> Option<bool> {
        self.stats.solution_depth_sum += self.trail.len() as u64;
        if !self.config.learning {
            return self.chrono_solution();
        }
        self.resolve_universals(&mut lits);
        self.existential_reduce(&mut lits);
        if P::ENABLED {
            self.proof.chain_reduce(self.qbf.prefix());
        }
        if lits.is_empty() {
            self.proof_finish(true);
            return Some(true);
        }
        self.stats.cube_size_sum += lits.len() as u64;
        if self.debug_dump && self.stats.solutions < 12 {
            let levels: Vec<(String, u32)> = lits
                .iter()
                .map(|&m| (m.to_string(), if self.lit_value(m).is_some() { self.level[m.var().index()] } else { 9999 }))
                .collect();
            let decs: Vec<String> = self.frames.iter().map(|f| format!("{}{}", f.lit, if self.is_existential(f.lit.var()) {"e"} else {"a"})).collect();
            eprintln!("SOLUTION depth={} level={} cube={:?} decisions={:?}", self.trail.len(), self.current_level(), levels, decs);
        }
        let cref = self.learn(lits.clone(), Kind::Cube);
        self.unwind_solution(lits, cref)
    }

    /// Dual of [`Solver::resolve_existentials`]: resolves away universal
    /// literals with cube reasons.
    fn resolve_universals(&mut self, lits: &mut Vec<Lit>) {
        // Mirror of `resolve_existentials`: `lit_mark` tracks membership
        // in `lits` for O(1) tests and is left all-false on return.
        for &l in lits.iter() {
            self.lit_mark[l.code()] = true;
        }
        let mut skipped: Vec<Lit> = Vec::new();
        loop {
            let mut pivot: Option<(usize, Lit, ConstraintRef)> = None;
            for &m in lits.iter() {
                let v = m.var();
                if !self.is_true(m) || self.is_existential(v) || skipped.contains(&m) {
                    continue;
                }
                let Reason::Constraint(r) = self.reason[v.index()] else {
                    continue;
                };
                if r.kind() != Kind::Cube {
                    continue;
                }
                let pos = self.trail_pos[v.index()] as usize;
                if pivot.is_none_or(|(p, _, _)| pos > p) {
                    pivot = Some((pos, m, r));
                }
            }
            let Some((_, m, r)) = pivot else { break };
            let reason_lits = self.db.lits(r);
            let mut ok = true;
            for &x in reason_lits {
                if x == !m {
                    continue;
                }
                if self.is_false(x) || self.lit_mark[(!x).code()] {
                    ok = false;
                    break;
                }
            }
            if !ok {
                skipped.push(m);
                continue;
            }
            lits.retain(|&y| y != m);
            self.lit_mark[m.code()] = false;
            for k in 0..self.db.len(r) {
                let x = self.db.lit(r, k);
                if x != !m && !self.lit_mark[x.code()] {
                    self.lit_mark[x.code()] = true;
                    lits.push(x);
                }
            }
            if P::ENABLED {
                let rl = self.db.lits(r).to_vec();
                self.proof.chain_resolve(self.qbf.prefix(), r.token(), &rl, m);
            }
        }
        for &l in lits.iter() {
            self.lit_mark[l.code()] = false;
        }
    }

    /// Unwinds the decision stack guided by a learned (satisfied) cube.
    fn unwind_solution(&mut self, mut lits: Vec<Lit>, mut cref: ConstraintRef) -> Option<bool> {
        let mut dirty = false;
        loop {
            if self.frames.is_empty() {
                self.proof_finish(true);
                return Some(true);
            }
            let k = self.current_level();
            let frame = *self.frames.last().expect("non-empty stack");
            let d = frame.lit;
            // Dual of the conflict unwind: count level-k literals without
            // materializing them.
            let mut at_k = 0usize;
            let mut at_k_first = d;
            for &m in lits.iter() {
                if self.lit_value(m).is_some() && self.level[m.var().index()] == k {
                    if at_k == 0 {
                        at_k_first = m;
                    }
                    at_k += 1;
                }
            }
            if at_k == 0 {
                self.stats.backjumps += 1;
                self.backtrack_one();
                self.observer.on_backjump(k, self.current_level());
                continue;
            }
            if at_k == 1 && at_k_first == d {
                if !self.is_existential(d.var()) {
                    if !frame.flipped {
                        if dirty {
                            cref = self.learn(lits.clone(), Kind::Cube);
                        }
                        self.backtrack_one();
                        if self.cube_unit_for(&lits, d) {
                            self.stats.propagations += 1;
                            self.assign(!d, Reason::Constraint(cref));
                            self.observer.on_propagation(
                                !d,
                                self.current_level(),
                                self.trail.len(),
                                PropagationKind::UnitCube,
                            );
                        } else {
                            self.push_decision(!d, true, Some(cref));
                        }
                        return None;
                    }
                    if let Some(pr) = frame.pseudo_reason {
                        if let Some(mut combined) = self.try_resolve_cube(&lits, pr, d) {
                            if P::ENABLED {
                                let pl = self.db.lits(pr).to_vec();
                                self.proof.chain_resolve(self.qbf.prefix(), pr.token(), &pl, d);
                            }
                            self.existential_reduce(&mut combined);
                            if P::ENABLED {
                                self.proof.chain_reduce(self.qbf.prefix());
                            }
                            if combined.is_empty() {
                                self.proof_finish(true);
                                return Some(true);
                            }
                            lits = combined;
                            dirty = true;
                            self.stats.backjumps += 1;
                            self.backtrack_one();
                            self.observer.on_backjump(k, self.current_level());
                            continue;
                        }
                    }
                    return self.chrono_solution();
                }
                // Existential decision: a true branch satisfies the node.
                // Keep unwinding only if d existentially reduces out.
                let rest: Vec<Lit> = lits.iter().copied().filter(|&m| m != d).collect();
                let reducible = !rest
                    .iter()
                    .any(|&u| !self.is_existential(u.var()) && self.prefix().precedes(d.var(), u.var()));
                if reducible {
                    lits = rest;
                    if P::ENABLED {
                        self.proof.chain_remove(self.qbf.prefix(), d);
                    }
                    if lits.is_empty() {
                        self.proof_finish(true);
                        return Some(true);
                    }
                    dirty = true;
                    self.stats.backjumps += 1;
                    self.backtrack_one();
                    self.observer.on_backjump(k, self.current_level());
                    continue;
                }
                return self.chrono_solution();
            }
            return self.chrono_solution();
        }
    }

    /// Term resolution of `lits` with cube `pr` on universal pivot `d`.
    fn try_resolve_cube(&self, lits: &[Lit], pr: ConstraintRef, d: Lit) -> Option<Vec<Lit>> {
        let reason = self.db.lits(pr);
        if !reason.contains(&!d) {
            return None;
        }
        let mut out: Vec<Lit> = lits.iter().copied().filter(|&m| m != d && m != !d).collect();
        for &x in reason {
            if x == !d || x == d {
                continue;
            }
            if self.is_false(x) || out.contains(&!x) {
                return None;
            }
            if !out.contains(&x) {
                out.push(x);
            }
        }
        Some(out)
    }

    /// Whether the cube would force `¬target` right now (dual unit).
    fn cube_unit_for(&self, lits: &[Lit], target: Lit) -> bool {
        for &m in lits {
            if m == target {
                continue;
            }
            match self.lit_value(m) {
                Some(true) => {}
                Some(false) => return false,
                None => {
                    if !self.is_existential(m.var())
                        || self.prefix().precedes(m.var(), target.var())
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Chronological fallback on solutions: flip the most recent unflipped
    /// universal decision (existential nodes are true as soon as one branch
    /// is).
    fn chrono_solution(&mut self) -> Option<bool> {
        self.stats.chrono_backtracks += 1;
        let from = self.current_level();
        loop {
            let Some(frame) = self.frames.last().copied() else {
                self.observer.on_chrono_backtrack(from, 0);
                self.proof_finish(true);
                return Some(true);
            };
            if !self.is_existential(frame.lit.var()) && !frame.flipped {
                let d = frame.lit;
                // Dual of `chrono_conflict`: discharge the frame's
                // propagations, then carry the working cube as the flip's
                // shadow.
                if P::ENABLED {
                    self.proof_drain_trail(frame.trail_start + 1, true);
                }
                self.backtrack_one();
                self.observer.on_chrono_backtrack(from, self.current_level());
                self.push_decision(!d, true, None);
                return None;
            }
            if P::ENABLED {
                self.proof_drain_trail(frame.trail_start + 1, true);
                self.proof.chain_absorb_frame(
                    self.qbf.prefix(),
                    frame.lit,
                    self.is_existential(frame.lit.var()),
                );
            }
            self.backtrack_one();
        }
    }

    // ------------------------------------------------------------------
    // Database reduction
    // ------------------------------------------------------------------

    fn maybe_reduce_db(&mut self) {
        let learned = self.db.num_learned_clauses + self.db.num_learned_cubes;
        if learned <= self.config.max_learned {
            return;
        }
        if M::ENABLED {
            self.metrics.phase_start(Phase::ReduceDb);
        }
        self.reduce_db();
        if M::ENABLED {
            self.metrics.phase_end(Phase::ReduceDb);
        }
    }

    fn reduce_db(&mut self) {
        // Locked constraints: trail reasons and frame pseudo-reasons.
        let mut locked: std::collections::HashSet<ConstraintRef> = std::collections::HashSet::new();
        for &l in &self.trail {
            if let Reason::Constraint(c) = self.reason[l.var().index()] {
                locked.insert(c);
            }
        }
        for f in &self.frames {
            if let Some(c) = f.pseudo_reason {
                locked.insert(c);
            }
        }
        // Forget the least active half; the stable sort over the
        // creation-order index breaks activity ties by creation order,
        // reproducing the pre-arena sweep exactly.
        let mut candidates: Vec<ConstraintRef> = self
            .db
            .learned_refs()
            .iter()
            .copied()
            .filter(|c| !self.db.is_deleted(*c) && !locked.contains(c))
            .collect();
        candidates.sort_by(|a, b| {
            self.db
                .activity(*a)
                .partial_cmp(&self.db.activity(*b))
                .expect("activities are finite")
        });
        let drop_count = candidates.len() / 2;
        for &c in candidates.iter().take(drop_count) {
            let lits = self.db.lits(c).to_vec();
            self.brancher.on_forget(&lits);
            if P::ENABLED {
                self.proof.on_delete(c.token());
            }
            self.db.delete(c);
            self.stats.forgotten += 1;
        }
        if drop_count > 0 {
            self.observer.on_forget(drop_count);
        }
        // Physically reclaim tombstones once they dominate the arena;
        // otherwise just drop their watcher entries. Either path removes
        // exactly the deleted constraints' watchers, in list order, so
        // search behaviour (including `watcher_visits`) is unaffected.
        if self.config.compact_db && self.db.wants_compaction() {
            self.compact_db();
        } else {
            self.db.purge_watchers();
        }
    }

    /// Runs arena compaction and relocates the refs the engine holds
    /// outside the database: antecedent/reason refs and frame
    /// pseudo-reasons. Reason refs of *unassigned* variables are stale and
    /// may point at reclaimed constraints; they are reset to `Decision`
    /// (they are never read while the variable is unassigned). Reasons of
    /// assigned variables and pseudo-reasons are locked against deletion,
    /// so their remap always succeeds.
    fn compact_db(&mut self) {
        if M::ENABLED {
            self.metrics.phase_start(Phase::Compaction);
        }
        // Compaction renames `ConstraintRef`s, which the proof sink uses
        // as tokens: snapshot the live refs first, then rebuild the sink's
        // token map from the (old, new) pairs.
        let live: Vec<ConstraintRef> = if P::ENABLED {
            self.db.all_refs().filter(|&c| !self.db.is_deleted(c)).collect()
        } else {
            Vec::new()
        };
        let map = self.db.compact();
        if P::ENABLED {
            let pairs: Vec<(u64, u64)> = live
                .iter()
                .filter_map(|&c| map.remap(c).map(|nc| (c.token(), nc.token())))
                .collect();
            self.proof.remap_tokens(&pairs);
        }
        for v in 0..self.reason.len() {
            if let Reason::Constraint(c) = self.reason[v] {
                self.reason[v] = match map.remap(c) {
                    Some(nc) => Reason::Constraint(nc),
                    None => {
                        debug_assert!(
                            self.value[v].is_none(),
                            "reason of an assigned variable was reclaimed"
                        );
                        Reason::Decision
                    }
                };
            }
        }
        for f in &mut self.frames {
            if let Some(c) = f.pseudo_reason {
                f.pseudo_reason = map.remap(c);
                debug_assert!(f.pseudo_reason.is_some(), "pinned pseudo-reason reclaimed");
            }
        }
        self.stats.compactions += 1;
        self.stats.arena_bytes_reclaimed += map.reclaimed_bytes as u64;
        self.observer.on_compaction(map.reclaimed_bytes);
        if M::ENABLED {
            self.metrics.phase_end(Phase::Compaction);
        }
    }

    // ------------------------------------------------------------------
    // Incremental solving support (see `super::incremental`)
    // ------------------------------------------------------------------

    /// Backtracks every decision level and pops the residual level-0
    /// trail, returning the solver to the empty assignment. Watcher lists
    /// are untouched (they are backtrack-invariant); learned constraints,
    /// activity scores and frame marks survive. Every incremental
    /// operation starts from this state.
    pub(crate) fn reset_search(&mut self) {
        while !self.frames.is_empty() {
            self.backtrack_one();
        }
        while let Some(l) = self.trail.pop() {
            self.unassign(l);
        }
        self.qhead = 0;
        // Candidates queued by the unassignments above (and any leftovers
        // from the previous query) are stale; each solve re-seeds.
        self.pure_candidates.clear();
        // The next solve is a fresh query: redo the initial scan, and
        // drop any event parked by a portfolio import (its constraint is
        // no longer falsified/validated under the empty assignment).
        self.search_started = false;
        self.pending_event = None;
    }

    /// Resets the per-query statistics, carrying over the arena
    /// high-water mark (a property of the database, not of one query).
    pub(crate) fn reset_stats(&mut self) {
        self.stats = Stats {
            arena_bytes_peak: self.db.bytes_peak as u64,
            ..Stats::default()
        };
    }

    /// Adds an original clause tagged with push frame `frame` (0 for the
    /// bottom frame). Requires the empty assignment ([`Solver::reset_search`]).
    ///
    /// Every learned cube is invalidated: a good certifies an implicant of
    /// the matrix at learn time, and the grown matrix may no longer be
    /// satisfied by it. Learned clauses are Q-resolution consequences of a
    /// subset of the (grown) matrix and survive unconditionally.
    pub(crate) fn add_original_clause(&mut self, lits: Vec<Lit>, frame: u32) {
        debug_assert!(self.trail.is_empty(), "add_original_clause on a non-empty trail");
        let prefix = self.qbf.prefix();
        let mut lits = lits;
        lits.sort_by_key(|l| !prefix.is_existential(l.var()));
        let movable = lits
            .iter()
            .take(2)
            .filter(|l| prefix.is_existential(l.var()))
            .count();
        self.brancher.on_learn(&lits);
        let cref = self.db.add(lits, Kind::Clause, false, movable, 0, 0);
        attach_unblock_sentinels(&mut self.db, prefix, cref);
        self.db.set_frame_mark(cref, frame);
        for &l in self.db.lits(cref) {
            self.active_occ[l.code()] += 1;
        }
        self.stats.arena_bytes_peak = self.stats.arena_bytes_peak.max(self.db.bytes_peak as u64);
        self.invalidate_cubes();
    }

    /// Deletes every live learned cube (called when the matrix grows).
    fn invalidate_cubes(&mut self) {
        let doomed: Vec<ConstraintRef> = self
            .db
            .learned_refs()
            .iter()
            .copied()
            .filter(|&c| c.kind() == Kind::Cube && !self.db.is_deleted(c))
            .collect();
        for c in doomed {
            let lits = self.db.lits(c).to_vec();
            self.brancher.on_forget(&lits);
            self.db.delete(c);
        }
    }

    /// Incremental `pop` to `level`: removes every original clause added
    /// in a higher frame and every learned clause whose derivation used
    /// one (frame mark above `level`). Learned cubes, lower-frame learned
    /// clauses, activity scores and the quantifier-tree caches survive.
    /// Requires the empty assignment ([`Solver::reset_search`]).
    pub(crate) fn invalidate_frames_above(&mut self, level: u32) {
        debug_assert!(self.trail.is_empty(), "pop on a non-empty trail");
        let doomed: Vec<ConstraintRef> = self
            .db
            .learned_refs()
            .iter()
            .copied()
            .filter(|&c| !self.db.is_deleted(c) && self.db.frame_mark(c) > level)
            .collect();
        for c in doomed {
            let lits = self.db.lits(c).to_vec();
            self.brancher.on_forget(&lits);
            self.db.delete(c);
        }
        for c in self.db.remove_originals_above(level) {
            let lits = self.db.lits(c).to_vec();
            for &l in &lits {
                self.active_occ[l.code()] -= 1;
            }
            self.brancher.on_forget(&lits);
        }
    }

    /// Reclaims tombstoned constraints between queries when garbage
    /// dominates. With an empty trail every reason ref is stale, so the
    /// remap in `compact_db` degrades gracefully to `Decision`.
    pub(crate) fn maybe_compact_between_queries(&mut self) {
        debug_assert!(self.trail.is_empty());
        if self.config.compact_db && self.db.wants_compaction() {
            self.compact_db();
        } else {
            self.db.purge_watchers();
        }
    }
}

/// The owned search state of a [`Solver`], detached from the borrowed
/// instance. [`Solver::into_session`] / [`Solver::from_session`] move the
/// state out of and back into a solver, letting an owner (the incremental
/// front end) keep learned constraints, heuristic scores and statistics
/// alive across queries without a self-referential struct.
#[derive(Debug)]
pub(crate) struct Session {
    config: SolverConfig,
    db: Db,
    brancher: Brancher,
    value: Vec<Option<bool>>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail_pos: Vec<u32>,
    trail: Vec<Lit>,
    qhead: usize,
    frames: Vec<Frame>,
    block_unassigned: Vec<u32>,
    active_occ: Vec<u32>,
    pure_candidates: Vec<Var>,
    stats: Stats,
    conflicts_since_decay: u64,
    analysis_mark: u32,
    lit_mark: Vec<bool>,
    debug_dump: bool,
}

impl<'a, O: SearchObserver, P: ProofSink, M: MetricsSink> Solver<'a, O, P, M> {
    /// Detaches the owned search state (ends the borrow of the QBF and
    /// drops the instruments — sessions persist search state only).
    pub(crate) fn into_session(self) -> Session {
        Session {
            config: self.config,
            db: self.db,
            brancher: self.brancher,
            value: self.value,
            level: self.level,
            reason: self.reason,
            trail_pos: self.trail_pos,
            trail: self.trail,
            qhead: self.qhead,
            frames: self.frames,
            block_unassigned: self.block_unassigned,
            active_occ: self.active_occ,
            pure_candidates: self.pure_candidates,
            stats: self.stats,
            conflicts_since_decay: self.conflicts_since_decay,
            analysis_mark: self.analysis_mark,
            lit_mark: self.lit_mark,
            debug_dump: self.debug_dump,
        }
    }
}

impl<'a> Solver<'a> {
    /// Re-attaches a detached session to its QBF. The caller must pass
    /// the same formula the session was created from (the incremental
    /// front end owns both, so the pairing is by construction).
    pub(crate) fn from_session(qbf: &'a Qbf, s: Session) -> Self {
        Solver::from_session_observed(qbf, s, NoopObserver)
    }
}

impl<'a, O: SearchObserver> Solver<'a, O> {
    /// [`Solver::from_session`] with a live observer attached for the
    /// duration of the borrow — how the incremental front end routes
    /// per-query progress/trace events without giving up the statically
    /// no-op default path (see `IncrementalSolver::solve_observed`).
    pub(crate) fn from_session_observed(qbf: &'a Qbf, s: Session, observer: O) -> Self {
        Solver {
            qbf,
            config: s.config,
            db: s.db,
            brancher: s.brancher,
            observer,
            proof: NoProof,
            metrics: NoopMetrics,
            value: s.value,
            level: s.level,
            reason: s.reason,
            trail_pos: s.trail_pos,
            trail: s.trail,
            qhead: s.qhead,
            frames: s.frames,
            block_unassigned: s.block_unassigned,
            active_occ: s.active_occ,
            pure_candidates: s.pure_candidates,
            stats: s.stats,
            conflicts_since_decay: s.conflicts_since_decay,
            analysis_mark: s.analysis_mark,
            lit_mark: s.lit_mark,
            debug_dump: s.debug_dump,
            // Portfolio hooks never persist across a session detach: a
            // re-attached view is a fresh query.
            search_started: false,
            epoch_limit: None,
            stop: None,
            share: None,
            pending_event: None,
        }
    }
}

// ----------------------------------------------------------------------
// Shadow counter oracle (`debug-counters`)
// ----------------------------------------------------------------------

/// The seed engine's eager per-constraint counter discipline, run in
/// shadow next to the watched propagator. It performs exactly the counter
/// updates the counter-based engine would perform (over full occurrence
/// lists, for every constraint, at assign/unassign time) and never feeds
/// a search decision, so the watched build's statistics are untouched;
/// [`Solver::shadow_verify`] then cross-checks the two propagators'
/// conclusions at every propagation fixpoint.
#[cfg(feature = "debug-counters")]
impl<O: SearchObserver, P: ProofSink, M: MetricsSink> Solver<'_, O, P, M> {
    fn shadow_assign(&mut self, lit: Lit) {
        // The satisfaction tracker in `assign` already maintains
        // `true_count` for original clauses; the shadow adds the learned
        // constraints' true counts and everyone's false counts.
        for i in 0..self.db.occ_shadow[lit.code()].len() {
            let c = self.db.occ_shadow[lit.code()][i];
            if self.db.is_learned(c) {
                *self.db.true_count_mut(c) += 1;
            }
        }
        let neg = !lit;
        for i in 0..self.db.occ_shadow[neg.code()].len() {
            let c = self.db.occ_shadow[neg.code()][i];
            *self.db.false_count_mut(c) += 1;
        }
    }

    fn shadow_unassign(&mut self, lit: Lit) {
        for i in 0..self.db.occ_shadow[lit.code()].len() {
            let c = self.db.occ_shadow[lit.code()][i];
            if self.db.is_learned(c) {
                *self.db.true_count_mut(c) -= 1;
            }
        }
        let neg = !lit;
        for i in 0..self.db.occ_shadow[neg.code()].len() {
            let c = self.db.occ_shadow[neg.code()][i];
            *self.db.false_count_mut(c) -= 1;
        }
    }

    /// Cross-checks the watched propagator against the counter discipline
    /// at a no-event propagation fixpoint:
    ///
    /// 1. every live constraint's counters equal a from-scratch recount
    ///    (the eager discipline is event-for-event intact), and
    /// 2. no constraint is conflicting (clauses) or validated (cubes),
    ///    and no *original* constraint is unit — i.e. the counter engine,
    ///    which scans occurrence lists eagerly, would not have found an
    ///    event the watched indices missed. This is the *tightness* claim
    ///    of the movable-relevant-watch + pinned-sentinel discipline (see
    ///    the module docs), checked at every fixpoint of every run.
    ///
    ///    Learned constraints are exempt from the *unit* half only: the
    ///    QUBE-style unwind asserts a flipped literal one level up, which
    ///    may sit above the levels of the constraint's other literals, so
    ///    a later backjump can pop the asserted literal alone and
    ///    re-expose the unit with no assignment event. The seed counter
    ///    engine — which also examined constraints only through the
    ///    occurrence lists of newly assigned literals — missed exactly
    ///    the same re-exposed units, so this is engine-equivalent
    ///    behaviour, not a watched-index hole; the unit is re-detected at
    ///    the next visit of any watched literal.
    fn shadow_verify(&self) {
        for (i, c) in self.db.all_refs().enumerate() {
            if self.db.is_deleted(c) {
                continue;
            }
            let lits = self.db.lits(c);
            let mut t = 0u32;
            let mut f = 0u32;
            for &m in lits {
                match self.lit_value(m) {
                    Some(true) => t += 1,
                    Some(false) => f += 1,
                    None => {}
                }
            }
            assert_eq!(self.db.true_count(c), t, "true_count drift on constraint {i}");
            assert_eq!(self.db.false_count(c), f, "false_count drift on constraint {i}");
            match c.kind() {
                // Clause without a true literal: the counter engine would
                // examine it eagerly. Replay Lemma 4/5 on the counters.
                Kind::Clause if t == 0 => {
                    let open_exist: Vec<Lit> = lits
                        .iter()
                        .copied()
                        .filter(|&m| self.lit_value(m).is_none() && self.is_existential(m.var()))
                        .collect();
                    assert!(
                        !open_exist.is_empty(),
                        "watched propagator missed a conflict on clause {i}"
                    );
                    if let [e] = open_exist[..] {
                        if !self.db.is_learned(c) {
                            let blocked = lits.iter().any(|&m| {
                                m != e
                                    && self.lit_value(m).is_none()
                                    && self.prefix().precedes(m.var(), e.var())
                            });
                            assert!(blocked, "watched propagator missed a unit on clause {i}");
                        }
                    }
                }
                // Cube without a false literal: dual replay — a cube all
                // of whose unassigned literals are existential is a
                // validated good; a single unblocked free universal is a
                // dual unit.
                Kind::Cube if f == 0 => {
                    let open_univ: Vec<Lit> = lits
                        .iter()
                        .copied()
                        .filter(|&m| self.lit_value(m).is_none() && !self.is_existential(m.var()))
                        .collect();
                    assert!(
                        !open_univ.is_empty(),
                        "watched propagator missed a solution on cube {i}"
                    );
                    if let [u] = open_univ[..] {
                        if !self.db.is_learned(c) {
                            let blocked = lits.iter().any(|&m| {
                                m != u
                                    && self.lit_value(m).is_none()
                                    && self.prefix().precedes(m.var(), u.var())
                            });
                            assert!(blocked, "watched propagator missed a unit on cube {i}");
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{HeuristicKind, SolverConfig};
    use super::*;
    use crate::samples;
    use crate::semantics;

    fn solve_with(qbf: &Qbf, config: SolverConfig) -> Option<bool> {
        Solver::new(qbf, config).solve().value()
    }

    fn all_configs() -> Vec<SolverConfig> {
        let mut configs = Vec::new();
        for heuristic in [
            HeuristicKind::Naive,
            HeuristicKind::VsidsLevel,
            HeuristicKind::VsidsTree,
            HeuristicKind::Random(12345),
        ] {
            for learning in [false, true] {
                for pure_literals in [false, true] {
                    configs.push(SolverConfig {
                        heuristic,
                        learning,
                        pure_literals,
                        ..SolverConfig::default()
                    });
                }
            }
        }
        configs
    }

    #[test]
    fn samples_all_configs() {
        let qbfs = [
            samples::paper_example(),
            samples::forall_exists_xor(),
            samples::exists_forall_xor(),
            samples::two_independent_games(),
            samples::sat_instance(),
            samples::unsat_instance(),
        ];
        for q in &qbfs {
            let expected = semantics::eval(q);
            for config in all_configs() {
                let got = solve_with(q, config.clone());
                assert_eq!(
                    got,
                    Some(expected),
                    "mismatch on {q} with {config:?}"
                );
            }
        }
    }

    #[test]
    fn node_limit_reports_timeout() {
        let config = SolverConfig::partial_order().with_node_limit(0);
        let out = Solver::new(&samples::paper_example(), config).solve();
        assert!(out.is_timeout());
        assert_eq!(out.value(), None);
    }

    #[test]
    fn trivially_true_and_false() {
        use crate::{Clause, Matrix, Prefix, Qbf};
        let t = Qbf::new(Prefix::empty(0), Matrix::new(0)).unwrap();
        assert_eq!(solve_with(&t, SolverConfig::partial_order()), Some(true));
        let f = Qbf::new(Prefix::empty(0), Matrix::from_clauses(0, [Clause::empty()])).unwrap();
        assert_eq!(solve_with(&f, SolverConfig::partial_order()), Some(false));
    }

    #[test]
    fn contradictory_input_clause_detected() {
        // ∀y (y) is immediately false by Lemma 4.
        use crate::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier};
        let p = Prefix::prenex(1, [(Quantifier::Forall, vec![Var::new(0)])]).unwrap();
        let m = Matrix::from_clauses(1, [Clause::new([Lit::from_dimacs(1)]).unwrap()]);
        let q = Qbf::new(p, m).unwrap();
        assert_eq!(solve_with(&q, SolverConfig::partial_order()), Some(false));
    }

    /// Pseudo-random well-formed non-prenex QBFs for differential testing.
    fn random_qbf(seed: u64, num_vars: usize, num_clauses: usize) -> Qbf {
        crate::samples::random_qbf(seed, num_vars, num_clauses)
    }

    #[test]
    fn differential_small_random_qbfs() {
        for seed in 0..120u64 {
            let q = random_qbf(seed, 4 + (seed % 4) as usize, 5 + (seed % 6) as usize);
            let expected = semantics::eval(&q);
            for config in all_configs() {
                let got = solve_with(&q, config.clone());
                assert_eq!(
                    got,
                    Some(expected),
                    "seed {seed}: mismatch on {q} with {config:?}"
                );
            }
        }
    }

    #[test]
    fn differential_medium_random_qbfs_default_configs() {
        for seed in 0..40u64 {
            let q = random_qbf(1000 + seed, 10, 18);
            let expected = semantics::eval(&q);
            for config in [
                SolverConfig::partial_order(),
                SolverConfig::total_order(),
                SolverConfig::basic(),
            ] {
                assert_eq!(
                    solve_with(&q, config.clone()),
                    Some(expected),
                    "seed {seed}: mismatch with {config:?}"
                );
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let out = Solver::new(&samples::paper_example(), SolverConfig::partial_order()).solve();
        assert_eq!(out.value(), Some(false));
        assert!(out.stats.assignments() > 0);
        assert!(out.stats.conflicts > 0);
    }

    #[test]
    fn db_reduction_preserves_correctness() {
        // A tiny learned-constraint cap forces the forgetting path (delete
        // + occurrence purge) to run constantly; results must not change.
        for seed in 0..40u64 {
            let q = random_qbf(500 + seed, 8, 14);
            let expected = semantics::eval(&q);
            let config = SolverConfig {
                max_learned: 3,
                ..SolverConfig::partial_order()
            };
            assert_eq!(
                solve_with(&q, config),
                Some(expected),
                "seed {seed} with aggressive forgetting"
            );
        }
    }

    #[test]
    fn aggressive_decay_preserves_correctness() {
        for seed in 0..30u64 {
            let q = random_qbf(700 + seed, 8, 14);
            let expected = semantics::eval(&q);
            let config = SolverConfig {
                decay_interval: 1,
                ..SolverConfig::total_order()
            };
            assert_eq!(solve_with(&q, config), Some(expected), "seed {seed}");
        }
    }

    #[test]
    fn conflict_limit_reports_timeout() {
        let config = SolverConfig {
            conflict_limit: Some(0),
            ..SolverConfig::partial_order()
        };
        let out = Solver::new(&samples::paper_example(), config).solve();
        assert!(out.is_timeout());
    }

    #[test]
    fn all_universal_matrix_is_false() {
        // ∀y1 y2 (y1 ∨ y2): contradictory by Lemma 4 without any search.
        use crate::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier};
        let p = Prefix::prenex(2, [(Quantifier::Forall, vec![Var::new(0), Var::new(1)])])
            .unwrap();
        let m = Matrix::from_clauses(
            2,
            [Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)]).unwrap()],
        );
        let q = Qbf::new(p, m).unwrap();
        let out = Solver::new(&q, SolverConfig::partial_order()).solve();
        assert_eq!(out.value(), Some(false));
        assert_eq!(out.stats.decisions, 0);
    }

    #[test]
    fn vacuous_bound_vars_are_handled() {
        // Bound variables that never occur in the matrix must not confuse
        // the availability machinery or the solution trigger.
        use crate::{Clause, Lit, Matrix, Prefix, Qbf, Quantifier};
        let p = Prefix::prenex(
            4,
            [
                (Quantifier::Exists, vec![Var::new(0), Var::new(2)]),
                (Quantifier::Forall, vec![Var::new(3)]),
                (Quantifier::Exists, vec![Var::new(1)]),
            ],
        )
        .unwrap();
        let m = Matrix::from_clauses(
            4,
            [Clause::new([Lit::from_dimacs(1), Lit::from_dimacs(2)]).unwrap()],
        );
        let q = Qbf::new(p, m).unwrap();
        for config in [SolverConfig::partial_order(), SolverConfig::basic()] {
            assert_eq!(
                Solver::new(&q, config).solve().value(),
                Some(true),
                "vacuous vars"
            );
        }
    }

    #[test]
    fn deep_alternation_chain() {
        // ∃x1 ∀y1 ∃x2 ∀y2 … with xor-chain clauses: true (each x mirrors
        // the previous y), and solvable without pathological behaviour.
        use crate::{Clause, Matrix, Prefix, Qbf, Quantifier};
        let n = 12; // x0 y0 x1 y1 …
        let blocks: Vec<(Quantifier, Vec<Var>)> = (0..n)
            .map(|i| {
                let q = if i % 2 == 0 {
                    Quantifier::Exists
                } else {
                    Quantifier::Forall
                };
                (q, vec![Var::new(i)])
            })
            .collect();
        let p = Prefix::prenex(n, blocks).unwrap();
        // clauses: x_{i+1} == y_i  (x at index 2i+2, y at 2i+1)
        let mut clauses = Vec::new();
        for i in (1..n - 1).step_by(2) {
            let y = Var::new(i);
            let x = Var::new(i + 1);
            clauses.push(Clause::new([y.negative(), x.positive()]).unwrap());
            clauses.push(Clause::new([y.positive(), x.negative()]).unwrap());
        }
        let q = Qbf::new(p, Matrix::from_clauses(n, clauses)).unwrap();
        let out = Solver::new(&q, SolverConfig::partial_order()).solve();
        assert_eq!(out.value(), Some(true));
    }

    #[test]
    fn learning_solves_with_fewer_or_equal_nodes_on_average() {
        // Not a strict theorem, but across a batch of random instances the
        // learning configuration should not explore wildly more nodes.
        let mut learned_total = 0u64;
        let mut basic_total = 0u64;
        for seed in 0..20u64 {
            let q = random_qbf(999 + seed, 9, 16);
            let with = Solver::new(
                &q,
                SolverConfig {
                    heuristic: HeuristicKind::Naive,
                    learning: true,
                    pure_literals: false,
                    ..SolverConfig::default()
                },
            )
            .solve();
            let without = Solver::new(
                &q,
                SolverConfig {
                    heuristic: HeuristicKind::Naive,
                    learning: false,
                    pure_literals: false,
                    ..SolverConfig::default()
                },
            )
            .solve();
            assert_eq!(with.value(), without.value());
            learned_total += with.stats.assignments();
            basic_total += without.stats.assignments();
        }
        assert!(
            learned_total <= basic_total * 3,
            "learning exploded: {learned_total} vs {basic_total}"
        );
    }
}
