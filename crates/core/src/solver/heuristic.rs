//! Branching heuristics (§VI of the paper).
//!
//! All heuristics only *rank* candidates; the engine guarantees that every
//! candidate is *available* (all `≺`-predecessors assigned), so any ranking
//! is sound.

use crate::prefix::Prefix;
use crate::var::{Lit, Var};

/// Selects the branching heuristic of the [`crate::solver::Solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeuristicKind {
    /// Deterministic: smallest available variable, negative phase first.
    Naive,
    /// QUBE(TO): literals ranked by (prefix level, VSIDS-like score, id).
    /// On a prenex input the level ordering reproduces the total-order
    /// priority queue of §VI.
    VsidsLevel,
    /// QUBE(PO): the tree-structured score of §VI — a literal's score is
    /// its counter plus the maximum score of the literals one level deeper
    /// *in its scope*, so outer literals always outrank their descendants
    /// while SAT instances degenerate to plain VSIDS.
    VsidsTree,
    /// Uniform random candidate and phase (differential testing).
    Random(u64),
}

/// Heuristic state: per-literal scores plus (for the tree variant) cached
/// per-block subtree maxima.
#[derive(Debug)]
pub(crate) struct Brancher {
    kind: HeuristicKind,
    /// VSIDS-like score per literal code.
    score: Vec<f64>,
    /// Per-block maximum literal score over the whole subtree (tree mode).
    subtree_max: Vec<f64>,
    /// Whether scores changed since the last subtree refresh.
    dirty: bool,
    rng: u64,
}

impl Brancher {
    pub(crate) fn new(kind: HeuristicKind, prefix: &Prefix, initial_counts: &[f64]) -> Self {
        let rng = match kind {
            HeuristicKind::Random(seed) => seed | 1,
            _ => 0x9e3779b97f4a7c15,
        };
        Brancher {
            kind,
            score: initial_counts.to_vec(),
            subtree_max: vec![0.0; prefix.num_blocks()],
            dirty: true,
            rng,
        }
    }

    /// Bumps the literals of a freshly learned constraint (the paper
    /// increments the occurrence counters when a constraint is added).
    pub(crate) fn on_learn(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.score[l.code()] += 1.0;
        }
        self.dirty = true;
    }

    /// Decrements scores when a learned constraint is forgotten.
    pub(crate) fn on_forget(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.score[l.code()] = (self.score[l.code()] - 1.0).max(0.0);
        }
        self.dirty = true;
    }

    /// Periodic decay: the paper halves the old score when the priority
    /// queue is rearranged.
    pub(crate) fn decay(&mut self) {
        for s in &mut self.score {
            *s /= 2.0;
        }
        self.dirty = true;
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Recomputes the per-block subtree maxima (tree mode). `O(blocks +
    /// vars)`, but only runs when scores changed since the last refresh.
    fn refresh_subtree_max(&mut self, prefix: &Prefix) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        // Post-order over the forest.
        let order: Vec<_> = prefix.blocks_dfs().collect();
        for &b in order.iter().rev() {
            let mut m = 0.0f64;
            for &c in prefix.block_children(b) {
                m = m.max(self.subtree_max[c.index()]);
            }
            // literal score within this block = counter + max of children
            let mut block_max = 0.0f64;
            for &v in prefix.block_vars(b) {
                let s = self.score[v.positive().code()].max(self.score[v.negative().code()]) + m;
                block_max = block_max.max(s);
            }
            self.subtree_max[b.index()] = block_max;
        }
    }

    /// Picks a branching literal among the candidate variables (all
    /// available and unassigned). Returns `None` iff `candidates` is empty.
    pub(crate) fn pick(&mut self, prefix: &Prefix, candidates: &[Var]) -> Option<Lit> {
        if candidates.is_empty() {
            return None;
        }
        match self.kind {
            HeuristicKind::Naive => {
                let v = *candidates.iter().min().expect("non-empty");
                Some(v.negative())
            }
            HeuristicKind::Random(_) => {
                let i = (self.next_random() % candidates.len() as u64) as usize;
                let v = candidates[i];
                Some(v.lit(self.next_random() & 1 == 1))
            }
            HeuristicKind::VsidsLevel => {
                let best = candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let (la, lb) = (prefix.level(a).unwrap_or(0), prefix.level(b).unwrap_or(0));
                        la.cmp(&lb)
                            .then_with(|| {
                                self.var_score(b)
                                    .partial_cmp(&self.var_score(a))
                                    .expect("scores are finite")
                            })
                            .then_with(|| a.cmp(&b))
                    })
                    .expect("non-empty");
                Some(self.phase(best))
            }
            HeuristicKind::VsidsTree => {
                self.refresh_subtree_max(prefix);
                let best = candidates
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        self.tree_score(prefix, a)
                            .partial_cmp(&self.tree_score(prefix, b))
                            .expect("scores are finite")
                            .then_with(|| b.cmp(&a))
                    })
                    .expect("non-empty");
                Some(self.phase(best))
            }
        }
    }

    /// Current VSIDS-like score of a literal (read-only; used by the
    /// observability layer to report the rank of a decision).
    pub(crate) fn score_of(&self, l: Lit) -> f64 {
        self.score[l.code()]
    }

    fn var_score(&self, v: Var) -> f64 {
        self.score[v.positive().code()].max(self.score[v.negative().code()])
    }

    /// §VI: counter of the literal plus the maximum score one prefix level
    /// deeper in its scope (the cached child-subtree maxima).
    fn tree_score(&self, prefix: &Prefix, v: Var) -> f64 {
        let mut child_max = 0.0f64;
        if let Some(b) = prefix.block_of(v) {
            for &c in prefix.block_children(b) {
                child_max = child_max.max(self.subtree_max[c.index()]);
            }
        }
        self.var_score(v) + child_max
    }

    /// Phase selection: the polarity with the higher score (ties positive).
    fn phase(&self, v: Var) -> Lit {
        if self.score[v.negative().code()] > self.score[v.positive().code()] {
            v.negative()
        } else {
            v.positive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Quantifier::*;

    fn v(i: usize) -> Var {
        Var::new(i)
    }

    fn paper_prefix() -> Prefix {
        use crate::prefix::PrefixBuilder;
        let mut b = PrefixBuilder::new(7);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let y1 = b.add_child(root, Forall, [v(1)]).unwrap();
        b.add_child(y1, Exists, [v(2), v(3)]).unwrap();
        let y2 = b.add_child(root, Forall, [v(4)]).unwrap();
        b.add_child(y2, Exists, [v(5), v(6)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn naive_picks_smallest_negative() {
        let p = paper_prefix();
        let mut h = Brancher::new(HeuristicKind::Naive, &p, &[0.0; 14]);
        assert_eq!(h.pick(&p, &[v(3), v(1)]), Some(v(1).negative()));
        assert_eq!(h.pick(&p, &[]), None);
    }

    #[test]
    fn tree_score_dominates_ancestors() {
        // §VI property 1: if |l| ≺ |l'| then score(l) ≥ score(l') (strictly
        // greater with positive counters), so ancestors are picked first.
        let p = paper_prefix();
        let mut counts = vec![1.0; 14];
        // make an inner literal very active
        counts[v(2).positive().code()] = 10.0;
        let mut h = Brancher::new(HeuristicKind::VsidsTree, &p, &counts);
        h.refresh_subtree_max(&p);
        assert!(h.tree_score(&p, v(0)) > h.tree_score(&p, v(2)));
        assert!(h.tree_score(&p, v(1)) > h.tree_score(&p, v(2)));
        // and the x0 score sees the hot subtree through y1
        assert!(h.tree_score(&p, v(0)) >= 11.0);
    }

    #[test]
    fn tree_mode_reduces_to_vsids_on_sat() {
        // §VI property 2: with a single ∃ block (a SAT instance), the tree
        // score equals the plain counter.
        let p = Prefix::prenex(3, [(Exists, vec![v(0), v(1), v(2)])]).unwrap();
        let mut counts = vec![0.0; 6];
        counts[v(1).positive().code()] = 5.0;
        let mut h = Brancher::new(HeuristicKind::VsidsTree, &p, &counts);
        assert_eq!(h.pick(&p, &[v(0), v(1), v(2)]), Some(v(1).positive()));
    }

    #[test]
    fn level_mode_prefers_outer_levels() {
        let p = paper_prefix();
        let mut counts = vec![0.0; 14];
        counts[v(2).positive().code()] = 100.0;
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &counts);
        // despite the huge inner score, the outer candidate wins on level
        assert_eq!(h.pick(&p, &[v(0), v(2)]), Some(v(0).positive()));
    }

    #[test]
    fn phase_follows_scores() {
        let p = Prefix::prenex(1, [(Exists, vec![v(0)])]).unwrap();
        let mut counts = vec![0.0; 2];
        counts[v(0).negative().code()] = 3.0;
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &counts);
        assert_eq!(h.pick(&p, &[v(0)]), Some(v(0).negative()));
    }

    #[test]
    fn learn_and_decay_update_scores() {
        let p = Prefix::prenex(1, [(Exists, vec![v(0)])]).unwrap();
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &[0.0; 2]);
        h.on_learn(&[v(0).positive()]);
        assert_eq!(h.var_score(v(0)), 1.0);
        h.decay();
        assert_eq!(h.var_score(v(0)), 0.5);
        h.on_forget(&[v(0).positive()]);
        assert_eq!(h.var_score(v(0)), 0.0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = paper_prefix();
        let cands = [v(0)];
        let a = Brancher::new(HeuristicKind::Random(7), &p, &[0.0; 14])
            .pick(&p, &cands)
            .unwrap();
        let b = Brancher::new(HeuristicKind::Random(7), &p, &[0.0; 14])
            .pick(&p, &cands)
            .unwrap();
        assert_eq!(a, b);
    }
}
