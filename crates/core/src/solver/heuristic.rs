//! Branching heuristics (§VI of the paper).
//!
//! All heuristics only *rank* candidates; the engine guarantees that every
//! candidate is *available* (all `≺`-predecessors assigned), so any ranking
//! is sound.

use std::collections::BinaryHeap;

use crate::prefix::{BlockId, Prefix};
use crate::var::{Lit, Var};

/// Selects the branching heuristic of the [`crate::solver::Solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeuristicKind {
    /// Deterministic: smallest available variable, negative phase first.
    Naive,
    /// QUBE(TO): literals ranked by (prefix level, VSIDS-like score, id).
    /// On a prenex input the level ordering reproduces the total-order
    /// priority queue of §VI.
    VsidsLevel,
    /// QUBE(PO): the tree-structured score of §VI — a literal's score is
    /// its counter plus the maximum score of the literals one level deeper
    /// *in its scope*, so outer literals always outrank their descendants
    /// while SAT instances degenerate to plain VSIDS.
    VsidsTree,
    /// Uniform random candidate and phase (differential testing).
    Random(u64),
}

/// A lazy-heap entry: a variable with the score it had when pushed.
///
/// Stale entries (the score has changed, or the variable got assigned)
/// stay in the heap and are discarded or re-keyed when they surface at
/// the top, MiniSat-style. Ordering is total: higher key first, ties
/// broken towards the *smaller* variable so that heap order agrees with
/// the scan comparators of [`Brancher::pick`].
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.var.cmp(&self.var))
    }
}

/// Heuristic state: per-literal scores plus (for the tree variant) cached
/// per-block subtree maxima, and per-block lazy max-heaps so that
/// decisions don't re-scan every candidate.
#[derive(Debug)]
pub(crate) struct Brancher {
    kind: HeuristicKind,
    /// VSIDS-like score per literal code.
    score: Vec<f64>,
    /// Per-block maximum literal score over the whole subtree (tree mode).
    subtree_max: Vec<f64>,
    /// Whether scores changed since the last subtree refresh.
    dirty: bool,
    /// Post-order of the block forest, cached at construction (the prefix
    /// is immutable for the lifetime of a solve), so
    /// [`Brancher::refresh_subtree_max`] doesn't collect `blocks_dfs()`
    /// into a fresh `Vec` on every refresh.
    dfs_order: Vec<BlockId>,
    /// Block of each variable, cached so score bumps can be routed to the
    /// right heap without a prefix in hand.
    var_block: Vec<Option<BlockId>>,
    /// One lazy max-heap of [`HeapEntry`] per quantifier block. Entries
    /// carry the key they were pushed with; [`Brancher::best_in_block`]
    /// drops assigned tops and re-keys stale ones.
    heaps: Vec<BinaryHeap<HeapEntry>>,
    rng: u64,
}

impl Brancher {
    pub(crate) fn new(kind: HeuristicKind, prefix: &Prefix, initial_counts: &[f64]) -> Self {
        let rng = match kind {
            HeuristicKind::Random(seed) => seed | 1,
            _ => 0x9e3779b97f4a7c15,
        };
        let var_block: Vec<Option<BlockId>> =
            (0..prefix.num_vars()).map(|i| prefix.block_of(Var::new(i))).collect();
        let mut brancher = Brancher {
            kind,
            score: initial_counts.to_vec(),
            subtree_max: vec![0.0; prefix.num_blocks()],
            dirty: true,
            dfs_order: prefix.blocks_dfs().collect(),
            var_block,
            heaps: vec![BinaryHeap::new(); prefix.num_blocks()],
            rng,
        };
        if brancher.uses_heaps() {
            for i in 0..brancher.var_block.len() {
                brancher.heap_insert(Var::new(i));
            }
        }
        brancher
    }

    /// Whether this heuristic branches through the per-block lazy heaps
    /// ([`Brancher::pick_incremental`]). `Random` keeps the candidate
    /// scan: its draw depends on the candidate *list*, not on scores.
    pub(crate) fn uses_heaps(&self) -> bool {
        !matches!(self.kind, HeuristicKind::Random(_))
    }

    /// The heap key of `v` under the current scores. `Naive` ranks by
    /// variable id alone, so its key is constantly zero (entries are never
    /// stale and the heap tie-break yields the smallest variable).
    fn key_of(&self, v: Var) -> f64 {
        match self.kind {
            HeuristicKind::Naive => 0.0,
            _ => self.score[v.positive().code()].max(self.score[v.negative().code()]),
        }
    }

    /// Pushes a fresh entry for `v` into its block's heap.
    fn heap_insert(&mut self, v: Var) {
        if let Some(b) = self.var_block[v.index()] {
            let key = self.key_of(v);
            self.heaps[b.index()].push(HeapEntry { key, var: v });
        }
    }

    /// The variable got unassigned and is branchable again: re-enter it
    /// into its block's heap (stale duplicates are fine — they are lazily
    /// discarded).
    pub(crate) fn on_unassign(&mut self, v: Var) {
        if self.uses_heaps() {
            self.heap_insert(v);
        }
    }

    /// Bumps the literals of a freshly learned constraint (the paper
    /// increments the occurrence counters when a constraint is added).
    pub(crate) fn on_learn(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.score[l.code()] += 1.0;
        }
        if self.uses_heaps() {
            // Re-key the bumped variables: the entries already in the heap
            // now under-estimate their scores, so without a fresh entry a
            // bumped variable could surface too late.
            for &l in lits {
                self.heap_insert(l.var());
            }
        }
        self.dirty = true;
    }

    /// Decrements scores when a learned constraint is forgotten.
    pub(crate) fn on_forget(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.score[l.code()] = (self.score[l.code()] - 1.0).max(0.0);
        }
        self.dirty = true;
    }

    /// Periodic decay: the paper halves the old score when the priority
    /// queue is rearranged.
    pub(crate) fn decay(&mut self) {
        for s in &mut self.score {
            *s /= 2.0;
        }
        self.dirty = true;
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Recomputes the per-block subtree maxima (tree mode). `O(blocks +
    /// vars)`, but only runs when scores changed since the last refresh.
    fn refresh_subtree_max(&mut self, prefix: &Prefix) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        // Post-order over the forest (reverse of the cached DFS preorder).
        let order = std::mem::take(&mut self.dfs_order);
        for &b in order.iter().rev() {
            let mut m = 0.0f64;
            for &c in prefix.block_children(b) {
                m = m.max(self.subtree_max[c.index()]);
            }
            // literal score within this block = counter + max of children
            let mut block_max = 0.0f64;
            for &v in prefix.block_vars(b) {
                let s = self.score[v.positive().code()].max(self.score[v.negative().code()]) + m;
                block_max = block_max.max(s);
            }
            self.subtree_max[b.index()] = block_max;
        }
        self.dfs_order = order;
    }

    /// Picks a branching literal among the candidate variables (all
    /// available and unassigned). Returns `None` iff `candidates` is empty.
    pub(crate) fn pick(&mut self, prefix: &Prefix, candidates: &[Var]) -> Option<Lit> {
        if candidates.is_empty() {
            return None;
        }
        match self.kind {
            HeuristicKind::Naive => {
                let v = *candidates.iter().min().expect("non-empty");
                Some(v.negative())
            }
            HeuristicKind::Random(_) => {
                let i = (self.next_random() % candidates.len() as u64) as usize;
                let v = candidates[i];
                Some(v.lit(self.next_random() & 1 == 1))
            }
            HeuristicKind::VsidsLevel => {
                let best = candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let (la, lb) = (prefix.level(a).unwrap_or(0), prefix.level(b).unwrap_or(0));
                        la.cmp(&lb)
                            .then_with(|| {
                                self.var_score(b)
                                    .partial_cmp(&self.var_score(a))
                                    .expect("scores are finite")
                            })
                            .then_with(|| a.cmp(&b))
                    })
                    .expect("non-empty");
                Some(self.phase(best))
            }
            HeuristicKind::VsidsTree => {
                self.refresh_subtree_max(prefix);
                let best = candidates
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        self.tree_score(prefix, a)
                            .partial_cmp(&self.tree_score(prefix, b))
                            .expect("scores are finite")
                            .then_with(|| b.cmp(&a))
                    })
                    .expect("non-empty");
                Some(self.phase(best))
            }
        }
    }

    /// The best unassigned variable of block `b` with its current key, or
    /// `None` if the block has no live entry. Lazily repairs the heap top:
    /// assigned variables are dropped (they re-enter via
    /// [`Brancher::on_unassign`]) and entries whose key went stale are
    /// re-pushed with the current key. Every variable's *current* key is
    /// never above its best stored key (scores only drop between pushes;
    /// bumps push a fresh entry), so a top whose stored key is current is
    /// the true block maximum.
    fn best_in_block(&mut self, b: BlockId, value: &[Option<bool>]) -> Option<(f64, Var)> {
        let kind = self.kind;
        let score = &self.score;
        let key_of = |v: Var| match kind {
            HeuristicKind::Naive => 0.0,
            _ => score[v.positive().code()].max(score[v.negative().code()]),
        };
        let heap = &mut self.heaps[b.index()];
        loop {
            let &top = heap.peek()?;
            if value[top.var.index()].is_some() {
                heap.pop();
                continue;
            }
            let cur = key_of(top.var);
            if top.key == cur {
                return Some((cur, top.var));
            }
            heap.pop();
            heap.push(HeapEntry { key: cur, var: top.var });
        }
    }

    /// Does block `b`'s candidate `(key, v)` outrank the incumbent
    /// `(bkey, bv)` from block `bb` under this heuristic's scan
    /// comparator? Comparisons replicate [`Brancher::pick`] exactly so the
    /// incremental path is decision-for-decision identical to the scan.
    fn block_beats(
        &self,
        prefix: &Prefix,
        (b, key, v): (BlockId, f64, Var),
        (bb, bkey, bv): (BlockId, f64, Var),
    ) -> bool {
        match self.kind {
            HeuristicKind::Naive => v < bv,
            HeuristicKind::Random(_) => unreachable!("Random branches via the scan"),
            HeuristicKind::VsidsLevel => {
                let (la, lb) = (prefix.block_level(b), prefix.block_level(bb));
                la.cmp(&lb)
                    .then_with(|| bkey.partial_cmp(&key).expect("scores are finite"))
                    .then_with(|| v.cmp(&bv))
                    .is_lt()
            }
            HeuristicKind::VsidsTree => {
                let ta = key + self.child_max(prefix, b);
                let tb = bkey + self.child_max(prefix, bb);
                ta.partial_cmp(&tb)
                    .expect("scores are finite")
                    .then_with(|| bv.cmp(&v))
                    .is_gt()
            }
        }
    }

    /// Incremental decision: the best candidate across the *available*
    /// blocks, found by folding each block's lazy-heap maximum instead of
    /// scanning every candidate variable. Returns `None` iff no block has
    /// an unassigned variable. Must only be called when
    /// [`Brancher::uses_heaps`] is `true`.
    pub(crate) fn pick_incremental(
        &mut self,
        prefix: &Prefix,
        blocks: &[BlockId],
        value: &[Option<bool>],
    ) -> Option<Lit> {
        debug_assert!(self.uses_heaps());
        if matches!(self.kind, HeuristicKind::VsidsTree) {
            self.refresh_subtree_max(prefix);
        }
        let mut best: Option<(BlockId, f64, Var)> = None;
        for &b in blocks {
            let Some((key, v)) = self.best_in_block(b, value) else {
                continue;
            };
            best = Some(match best {
                None => (b, key, v),
                Some(inc) => {
                    if self.block_beats(prefix, (b, key, v), inc) {
                        (b, key, v)
                    } else {
                        inc
                    }
                }
            });
        }
        best.map(|(_, _, v)| match self.kind {
            HeuristicKind::Naive => v.negative(),
            _ => self.phase(v),
        })
    }

    /// Current VSIDS-like score of a literal (read-only; used by the
    /// observability layer to report the rank of a decision).
    pub(crate) fn score_of(&self, l: Lit) -> f64 {
        self.score[l.code()]
    }

    fn var_score(&self, v: Var) -> f64 {
        self.score[v.positive().code()].max(self.score[v.negative().code()])
    }

    /// Maximum cached subtree score among the children of block `b` (the
    /// shared addend of every tree score in the block).
    fn child_max(&self, prefix: &Prefix, b: BlockId) -> f64 {
        let mut m = 0.0f64;
        for &c in prefix.block_children(b) {
            m = m.max(self.subtree_max[c.index()]);
        }
        m
    }

    /// §VI: counter of the literal plus the maximum score one prefix level
    /// deeper in its scope (the cached child-subtree maxima).
    fn tree_score(&self, prefix: &Prefix, v: Var) -> f64 {
        let child_max = match prefix.block_of(v) {
            Some(b) => self.child_max(prefix, b),
            None => 0.0,
        };
        self.var_score(v) + child_max
    }

    /// Phase selection: the polarity with the higher score (ties positive).
    fn phase(&self, v: Var) -> Lit {
        if self.score[v.negative().code()] > self.score[v.positive().code()] {
            v.negative()
        } else {
            v.positive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Quantifier::*;

    fn v(i: usize) -> Var {
        Var::new(i)
    }

    fn paper_prefix() -> Prefix {
        use crate::prefix::PrefixBuilder;
        let mut b = PrefixBuilder::new(7);
        let root = b.add_root(Exists, [v(0)]).unwrap();
        let y1 = b.add_child(root, Forall, [v(1)]).unwrap();
        b.add_child(y1, Exists, [v(2), v(3)]).unwrap();
        let y2 = b.add_child(root, Forall, [v(4)]).unwrap();
        b.add_child(y2, Exists, [v(5), v(6)]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn naive_picks_smallest_negative() {
        let p = paper_prefix();
        let mut h = Brancher::new(HeuristicKind::Naive, &p, &[0.0; 14]);
        assert_eq!(h.pick(&p, &[v(3), v(1)]), Some(v(1).negative()));
        assert_eq!(h.pick(&p, &[]), None);
    }

    #[test]
    fn tree_score_dominates_ancestors() {
        // §VI property 1: if |l| ≺ |l'| then score(l) ≥ score(l') (strictly
        // greater with positive counters), so ancestors are picked first.
        let p = paper_prefix();
        let mut counts = vec![1.0; 14];
        // make an inner literal very active
        counts[v(2).positive().code()] = 10.0;
        let mut h = Brancher::new(HeuristicKind::VsidsTree, &p, &counts);
        h.refresh_subtree_max(&p);
        assert!(h.tree_score(&p, v(0)) > h.tree_score(&p, v(2)));
        assert!(h.tree_score(&p, v(1)) > h.tree_score(&p, v(2)));
        // and the x0 score sees the hot subtree through y1
        assert!(h.tree_score(&p, v(0)) >= 11.0);
    }

    #[test]
    fn tree_mode_reduces_to_vsids_on_sat() {
        // §VI property 2: with a single ∃ block (a SAT instance), the tree
        // score equals the plain counter.
        let p = Prefix::prenex(3, [(Exists, vec![v(0), v(1), v(2)])]).unwrap();
        let mut counts = vec![0.0; 6];
        counts[v(1).positive().code()] = 5.0;
        let mut h = Brancher::new(HeuristicKind::VsidsTree, &p, &counts);
        assert_eq!(h.pick(&p, &[v(0), v(1), v(2)]), Some(v(1).positive()));
    }

    #[test]
    fn level_mode_prefers_outer_levels() {
        let p = paper_prefix();
        let mut counts = vec![0.0; 14];
        counts[v(2).positive().code()] = 100.0;
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &counts);
        // despite the huge inner score, the outer candidate wins on level
        assert_eq!(h.pick(&p, &[v(0), v(2)]), Some(v(0).positive()));
    }

    #[test]
    fn phase_follows_scores() {
        let p = Prefix::prenex(1, [(Exists, vec![v(0)])]).unwrap();
        let mut counts = vec![0.0; 2];
        counts[v(0).negative().code()] = 3.0;
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &counts);
        assert_eq!(h.pick(&p, &[v(0)]), Some(v(0).negative()));
    }

    #[test]
    fn learn_and_decay_update_scores() {
        let p = Prefix::prenex(1, [(Exists, vec![v(0)])]).unwrap();
        let mut h = Brancher::new(HeuristicKind::VsidsLevel, &p, &[0.0; 2]);
        h.on_learn(&[v(0).positive()]);
        assert_eq!(h.var_score(v(0)), 1.0);
        h.decay();
        assert_eq!(h.var_score(v(0)), 0.5);
        h.on_forget(&[v(0).positive()]);
        assert_eq!(h.var_score(v(0)), 0.0);
    }

    /// All blocks of `p` whose variables are all unassigned in `value`
    /// and whose ancestors are fully assigned (mirrors the engine's
    /// availability computation for these fully-unassigned test prefixes).
    fn available_blocks(p: &Prefix, value: &[Option<bool>]) -> Vec<crate::prefix::BlockId> {
        let mut blocks = Vec::new();
        let mut stack: Vec<_> = p.roots().to_vec();
        while let Some(b) = stack.pop() {
            if p.block_vars(b).iter().any(|v| value[v.index()].is_none()) {
                blocks.push(b);
                continue;
            }
            stack.extend(p.block_children(b).iter().copied());
        }
        blocks
    }

    #[test]
    fn incremental_pick_matches_scan() {
        // The lazy-heap path must be decision-for-decision identical to
        // the candidate scan, across heuristics, bumps, decay and
        // partial assignments.
        let p = paper_prefix();
        for kind in [HeuristicKind::Naive, HeuristicKind::VsidsLevel, HeuristicKind::VsidsTree] {
            let mut counts = vec![0.0; 14];
            counts[v(2).positive().code()] = 3.0;
            counts[v(5).negative().code()] = 7.0;
            let mut h = Brancher::new(kind, &p, &counts);
            assert!(h.uses_heaps());
            let mut value: Vec<Option<bool>> = vec![None; 7];

            // fully unassigned: only the root block is available
            let blocks = available_blocks(&p, &value);
            let scan_cands: Vec<Var> = blocks
                .iter()
                .flat_map(|&b| p.block_vars(b))
                .copied()
                .filter(|x| value[x.index()].is_none())
                .collect();
            assert_eq!(h.pick_incremental(&p, &blocks, &value), h.pick(&p, &scan_cands));

            // assign the root and one inner var, bump and decay: stale
            // heap entries must be repaired, not trusted
            value[0] = Some(true);
            h.on_learn(&[v(3).positive(), v(6).negative()]);
            h.decay();
            h.on_forget(&[v(5).negative()]);
            value[1] = Some(false);
            h.on_unassign(v(1));
            let blocks = available_blocks(&p, &value);
            let scan_cands: Vec<Var> = blocks
                .iter()
                .flat_map(|&b| p.block_vars(b))
                .copied()
                .filter(|x| value[x.index()].is_none())
                .collect();
            assert_eq!(h.pick_incremental(&p, &blocks, &value), h.pick(&p, &scan_cands));
        }
    }

    #[test]
    fn incremental_pick_skips_assigned_and_empty_blocks() {
        let p = paper_prefix();
        let mut h = Brancher::new(HeuristicKind::Naive, &p, &[0.0; 14]);
        let mut value: Vec<Option<bool>> = vec![None; 7];
        // assign everything: no pick
        for slot in value.iter_mut() {
            *slot = Some(true);
        }
        let blocks: Vec<_> = p.blocks_dfs().collect();
        assert_eq!(h.pick_incremental(&p, &blocks, &value), None);
        // unassign one inner variable and re-enter it
        value[5] = None;
        h.on_unassign(v(5));
        assert_eq!(h.pick_incremental(&p, &blocks, &value), Some(v(5).negative()));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = paper_prefix();
        let cands = [v(0)];
        let a = Brancher::new(HeuristicKind::Random(7), &p, &[0.0; 14])
            .pick(&p, &cands)
            .unwrap();
        let b = Brancher::new(HeuristicKind::Random(7), &p, &[0.0; 14])
            .pick(&p, &cands)
            .unwrap();
        assert_eq!(a, b);
    }
}
