//! Cross-crate integration tests: generators → prenexing/miniscoping →
//! solvers → oracles.

use qbf_repro::core::io::{qdimacs, qtree};
use qbf_repro::core::recursive::{self, RecursiveConfig};
use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::core::{samples, semantics, Qbf};
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::models::{compute_diameter, counter, dme, explore, ring, semaphore, DiameterForm};
use qbf_repro::prenex::{miniscope, prenex, Strategy};

fn solve_po(q: &Qbf) -> Option<bool> {
    Solver::new(q, SolverConfig::partial_order().with_node_limit(5_000_000))
        .solve()
        .value()
}

fn solve_to(q: &Qbf) -> Option<bool> {
    Solver::new(q, SolverConfig::total_order().with_node_limit(5_000_000))
        .solve()
        .value()
}

#[test]
fn ncf_pipeline_agrees_across_strategies_and_solvers() {
    let params = NcfParams {
        dep: 4,
        var: 2,
        cls_ratio: 3,
        lpc: 4,
    };
    for seed in 0..6 {
        let po = ncf(&params, seed);
        let reference = solve_po(&po).expect("within budget");
        for strategy in Strategy::ALL {
            let flat = prenex(&po, strategy);
            assert!(flat.is_prenex());
            assert_eq!(solve_to(&flat), Some(reference), "seed {seed} {strategy}");
        }
        // recursive reference solver agrees too
        let rec = recursive::solve(&po, &RecursiveConfig::default());
        assert_eq!(rec.value, Some(reference), "seed {seed} recursive");
    }
}

#[test]
fn fpv_pipeline_agrees() {
    let params = FpvParams {
        config_vars: 3,
        branches: 3,
        branch_depth: 1,
        block_vars: 2,
        clauses_per_branch: 8,
        lpc: 4,
    };
    for seed in 0..6 {
        let po = fpv(&params, seed);
        let flat = prenex(&po, Strategy::ExistsUpForallUp);
        assert_eq!(solve_po(&po), solve_to(&flat), "seed {seed}");
    }
}

#[test]
fn dia_pipeline_matches_bfs_all_models() {
    for model in [counter(2), ring(3), semaphore(2), dme(2)] {
        let truth = explore(&model).expect("models have initial states");
        let po = compute_diameter(
            &model,
            DiameterForm::Tree,
            &SolverConfig::partial_order().with_node_limit(5_000_000),
            20,
        );
        let to = compute_diameter(
            &model,
            DiameterForm::Prenex,
            &SolverConfig::total_order().with_node_limit(5_000_000),
            20,
        );
        assert_eq!(po.diameter, Some(truth.eccentricity), "{} po", model.name());
        assert_eq!(to.diameter, Some(truth.eccentricity), "{} to", model.name());
    }
}

#[test]
fn miniscope_pipeline_preserves_value() {
    let params = RandParams::three_block(6, 4, 6, 40, 4).with_locality(2, 10);
    for seed in 0..8 {
        let flat = rand_qbf(&params, seed);
        let mini = miniscope(&flat).expect("prenex input");
        assert_eq!(
            solve_to(&flat),
            solve_po(&mini.qbf),
            "seed {seed}: miniscoping changed the value"
        );
    }
}

#[test]
fn fixed_instances_recoverable_and_consistent() {
    let params = FixedParams {
        groups: 3,
        depth: 3,
        block_vars: 2,
        clauses_per_group: 12,
        lpc: 5,
    };
    for seed in 0..5 {
        let inst = fixed(&params, seed);
        let mini = miniscope(&inst.prenex).expect("prenex input");
        let a = solve_to(&inst.prenex);
        let b = solve_po(&mini.qbf);
        let c = solve_po(&inst.structured);
        assert_eq!(a, b, "seed {seed}");
        assert_eq!(b, c, "seed {seed}");
    }
}

#[test]
fn io_roundtrip_through_both_formats() {
    let q = samples::paper_example();
    // qtree keeps the structure
    let text = qtree::write(&q);
    let q2 = qtree::parse(&text).expect("own output parses");
    assert_eq!(q, q2);
    // qdimacs via prenexing
    let flat = prenex(&q, Strategy::ExistsUpForallUp);
    let text = qdimacs::write(&flat);
    let flat2 = qdimacs::parse(&text).expect("own output parses");
    assert_eq!(flat, flat2);
    // both solve to the same (false) value
    assert_eq!(solve_po(&q2), Some(false));
    assert_eq!(solve_to(&flat2), Some(false));
}

#[test]
fn generated_instances_roundtrip_qtree() {
    let params = NcfParams {
        dep: 4,
        var: 3,
        cls_ratio: 2,
        lpc: 4,
    };
    for seed in 0..4 {
        let q = ncf(&params, seed);
        let q2 = qtree::parse(&qtree::write(&q)).expect("roundtrip");
        assert_eq!(q, q2, "seed {seed}");
    }
}

#[test]
fn naive_oracle_spot_checks_generators() {
    // Small instances from every generator against the exponential oracle.
    let q = ncf(
        &NcfParams {
            dep: 3,
            var: 1,
            cls_ratio: 3,
            lpc: 3,
        },
        1,
    );
    assert_eq!(solve_po(&q), Some(semantics::eval(&q)));
    let q = fpv(
        &FpvParams {
            config_vars: 2,
            branches: 2,
            branch_depth: 1,
            block_vars: 1,
            clauses_per_branch: 5,
            lpc: 3,
        },
        1,
    );
    assert_eq!(solve_po(&q), Some(semantics::eval(&q)));
    let q = rand_qbf(&RandParams::three_block(2, 2, 2, 10, 3), 1);
    assert_eq!(solve_to(&q), Some(semantics::eval(&q)));
}
