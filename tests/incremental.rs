//! The incremental differential suite: randomized push/pop/assume
//! scripts over the full differential instance pool, cross-checked
//! query-by-query against cold solves of the equivalent one-shot
//! formula.
//!
//! For every pool instance (the same 239-instance mix as
//! `tests/differential.rs`) and under both QUBE(TO) and QUBE(PO), an
//! in-tree PRNG (`qbf_gen::rng`) drives a script of `push`, `pop`,
//! `add`, `assume` and `solve` operations against an
//! [`IncrementalSolver`]. The test maintains its own mirror of the frame
//! stack and, at every `solve`, rebuilds the equivalent formula
//! *independently* of the solver's bookkeeping and solves it cold with
//! the same configuration — the verdicts must match exactly. Added
//! clauses are mutations of the instance's own clauses (drop or flip one
//! literal), so they are always scope-compatible with the prefix.
//!
//! Built with `--features qbf-core/debug-counters`, every solver run is
//! additionally shadow-verified by the eager counter discipline, so the
//! incremental add/remove paths are cross-checked against the watched
//! propagator too.
//!
//! The file also pins the DIA-sequence reuse benefit (incremental totals
//! never exceed cold totals on a φ1..φk family) and certificate
//! soundness under incrementality (per-query `qrp 1` certificates verify
//! against the frame-restricted instance and are byte-deterministic
//! across identical sessions).

use qbf_repro::core::solver::{
    IncrementalError, IncrementalSolver, Solver, SolverConfig,
};
use qbf_repro::core::{samples, Clause, Lit, Matrix, Qbf, Var};
use qbf_repro::gen::rng::Rng;
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::models::{counter, diameter_sequence, run_diameter_incremental, DiameterForm};
use qbf_repro::prenex::{miniscope, prenex, Strategy};
use qbf_repro::proof::check_proof;

/// Mirror of the session's frame stack, maintained independently so a
/// bookkeeping bug in the solver cannot hide itself.
struct Mirror {
    /// Clauses added to the permanent bottom frame.
    bottom: Vec<Clause>,
    /// One clause list per open `push` frame.
    stack: Vec<Vec<Clause>>,
    /// Assumptions queued for the next query.
    assumed: Vec<Lit>,
}

impl Mirror {
    fn new() -> Self {
        Mirror {
            bottom: Vec::new(),
            stack: Vec::new(),
            assumed: Vec::new(),
        }
    }

    /// The one-shot formula the next query must be equivalent to.
    fn equivalent(&self, base: &Qbf) -> Qbf {
        let mut clauses = base.matrix().clauses().to_vec();
        clauses.extend(self.bottom.iter().cloned());
        for frame in &self.stack {
            clauses.extend(frame.iter().cloned());
        }
        for &a in &self.assumed {
            clauses.push(Clause::new([a]).expect("unit"));
        }
        Qbf::new(
            base.prefix().clone(),
            Matrix::from_clauses(base.num_vars(), clauses),
        )
        .expect("mutated clauses stay over the instance's own scopes")
    }
}

/// A scope-safe random clause: a mutation of one of the instance's own
/// clauses (variables stay within a single clause's scope chain). Either
/// drops one literal (strengthening) or flips one polarity.
fn mutate_clause(base: &[Clause], rng: &mut Rng) -> Option<Clause> {
    if base.is_empty() {
        return None;
    }
    let c = &base[rng.gen_range(0..base.len())];
    let mut lits: Vec<Lit> = c.lits().to_vec();
    if lits.is_empty() {
        return Some(c.clone());
    }
    let i = rng.gen_range(0..lits.len());
    if lits.len() > 1 && rng.gen_bool(0.5) {
        lits.remove(i);
    } else {
        let l = lits[i];
        lits[i] = l.var().lit(!l.is_positive());
    }
    Some(Clause::new(lits).expect("distinct variables are preserved"))
}

/// One `solve` step: query the session and a cold solver on the
/// mirror-built equivalent formula; the verdicts must agree.
fn check_solve(
    label: &str,
    base: &Qbf,
    config: &SolverConfig,
    inc: &mut IncrementalSolver,
    mirror: &mut Mirror,
) {
    let equivalent = mirror.equivalent(base);
    let got = inc.solve().value();
    let cold = Solver::new(&equivalent, config.clone())
        .solve()
        .value()
        .unwrap_or_else(|| panic!("{label}: cold reference hit the node limit"));
    assert_eq!(
        got,
        Some(cold),
        "{label}: incremental verdict diverges from the cold solve"
    );
    mirror.assumed.clear(); // the session consumed them
}

/// Drives one randomized script against `qbf` under both TO and PO.
fn script_check(label: &str, qbf: &Qbf, seed: u64) {
    let all_vars: Vec<Var> = qbf.prefix().bound_vars().collect();
    let base_clauses: Vec<Clause> = qbf.matrix().clauses().to_vec();
    for (ci, config) in [SolverConfig::total_order(), SolverConfig::partial_order()]
        .into_iter()
        .enumerate()
    {
        let config = config.with_node_limit(2_000_000);
        let mut rng =
            Rng::seed_from_u64(seed ^ (ci as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut inc = IncrementalSolver::new(qbf.clone(), config.clone());
        let mut mirror = Mirror::new();
        let label = format!("{label} [{}]", if ci == 0 { "TO" } else { "PO" });
        check_solve(&label, qbf, &config, &mut inc, &mut mirror);
        for _ in 0..10 {
            match rng.gen_range(0..6) {
                0 => {
                    inc.push();
                    mirror.stack.push(Vec::new());
                }
                1 => {
                    if mirror.stack.is_empty() {
                        assert_eq!(inc.pop(), Err(IncrementalError::PopBottom), "{label}");
                    } else {
                        inc.pop().unwrap_or_else(|e| panic!("{label}: pop: {e}"));
                        mirror.stack.pop();
                    }
                }
                2 | 3 => {
                    if let Some(c) = mutate_clause(&base_clauses, &mut rng) {
                        inc.add_clause(c.lits())
                            .unwrap_or_else(|e| panic!("{label}: add: {e}"));
                        match mirror.stack.last_mut() {
                            Some(frame) => frame.push(c),
                            None => mirror.bottom.push(c),
                        }
                    }
                }
                4 => {
                    if !all_vars.is_empty() {
                        let v = all_vars[rng.gen_range(0..all_vars.len())];
                        let l = v.lit(rng.gen_bool(0.5));
                        match inc.assume(l) {
                            Ok(()) => mirror.assumed.push(l),
                            Err(IncrementalError::UniversalAssumption(_)) => {
                                assert!(!qbf.prefix().is_existential(v), "{label}")
                            }
                            Err(e) => panic!("{label}: assume: {e}"),
                        }
                    }
                }
                _ => check_solve(&label, qbf, &config, &mut inc, &mut mirror),
            }
        }
        check_solve(&label, qbf, &config, &mut inc, &mut mirror);
    }
}

/// The hand-written sample formulas (prenex and non-prenex).
#[test]
fn incremental_samples() {
    let cases: [(&str, Qbf); 6] = [
        ("paper_example", samples::paper_example()),
        ("forall_exists_xor", samples::forall_exists_xor()),
        ("exists_forall_xor", samples::exists_forall_xor()),
        ("two_independent_games", samples::two_independent_games()),
        ("sat_instance", samples::sat_instance()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (i, (name, qbf)) in cases.into_iter().enumerate() {
        script_check(name, &qbf, 0x5e55_1011 + i as u64);
    }
}

/// 150 random non-prenex quantifier forests (same seeds as
/// `tests/differential.rs`).
#[test]
fn incremental_random_forests() {
    for seed in 0..150u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0xd1f, 7, 11);
        script_check(&format!("forest seed {seed}"), &q, 0xf0e5 ^ seed);
    }
}

/// 50 prenexed forests (rotating §V strategies) and 20 miniscoped forms.
#[test]
fn incremental_prenexed_and_miniscoped() {
    for seed in 0..50u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0xabc, 7, 10);
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let flat = prenex(&q, strategy);
        script_check(&format!("prenex({strategy}) seed {seed}"), &flat, 0x11ea ^ seed);
        if seed < 20 {
            let mini = miniscope(&flat).expect("prenex input").qbf;
            script_check(&format!("miniscope seed {seed}"), &mini, 0x3111 ^ seed);
        }
    }
}

/// Structured generator instances (NCF, FPV, FIXED, PROB).
#[test]
fn incremental_generators() {
    for seed in 0..4u64 {
        let q = ncf(
            &NcfParams {
                dep: 3,
                var: 2,
                cls_ratio: 2,
                lpc: 3,
            },
            seed,
        );
        script_check(&format!("ncf seed {seed}"), &q, 0x4cf ^ seed);
    }
    for seed in 0..3u64 {
        let q = fpv(
            &FpvParams {
                config_vars: 3,
                branches: 2,
                branch_depth: 2,
                block_vars: 2,
                clauses_per_branch: 8,
                lpc: 3,
            },
            seed,
        );
        script_check(&format!("fpv seed {seed}"), &q, 0xf42 ^ seed);
    }
    for seed in 0..3u64 {
        let inst = fixed(
            &FixedParams {
                groups: 2,
                depth: 2,
                block_vars: 2,
                clauses_per_group: 6,
                lpc: 3,
            },
            seed,
        );
        script_check(&format!("fixed(prenex) seed {seed}"), &inst.prenex, 0xf1d0 ^ seed);
        let mini = miniscope(&inst.prenex).expect("prenex input").qbf;
        script_check(&format!("fixed(miniscoped) seed {seed}"), &mini, 0xf1d1 ^ seed);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(&RandParams::three_block(4, 3, 4, 20, 3), seed);
        script_check(&format!("prob seed {seed}"), &q, 0x920b ^ seed);
    }
}

/// The DIA-sequence regression: solving the φ1..φk family through one
/// incremental session gives the same verdicts as cold solves of the
/// per-probe equivalent formulas, and the total deterministic cost of
/// the session never exceeds the cold totals (each probe is solved
/// twice; the repeat reuses the frame's learned clauses and cubes).
#[test]
fn dia_sequence_incremental_not_worse_than_cold() {
    let m = counter(2);
    for (form, config) in [
        (DiameterForm::Tree, SolverConfig::partial_order()),
        (DiameterForm::Prenex, SolverConfig::total_order()),
    ] {
        let seq = diameter_sequence(&m, form, 4);
        let run = run_diameter_incremental(&seq, &config, 2);
        let mut cold_assignments = 0u64;
        let mut cold_backtracks = 0u64;
        for r in &run.results {
            let mut cold_value = None;
            for _ in 0..2 {
                let out = Solver::new(&r.equivalent, config.clone()).solve();
                cold_assignments += out.stats.assignments();
                cold_backtracks += out.stats.backjumps + out.stats.chrono_backtracks;
                cold_value = Some(out.value().expect("no budget configured"));
            }
            for o in &r.outcomes {
                assert_eq!(
                    o.value(),
                    Some(cold_value.unwrap()),
                    "{form:?} n={}: incremental verdict diverges",
                    r.n
                );
            }
        }
        assert!(
            run.total_backtracks() <= cold_backtracks,
            "{form:?}: incremental backtracks {} exceed cold {}",
            run.total_backtracks(),
            cold_backtracks
        );
        assert!(
            run.total_assignments() <= cold_assignments,
            "{form:?}: incremental assignments {} exceed cold {}",
            run.total_assignments(),
            cold_assignments
        );
    }
}

/// Certificates under incrementality: every `solve` of a push/pop
/// session yields a standalone `qrp 1` certificate that the independent
/// verifier accepts against the query's frame-restricted instance, with
/// the same verdict — and two identical sessions produce byte-identical
/// certificates.
#[test]
fn proofs_under_incrementality() {
    let instances = [
        ("paper_example", samples::paper_example()),
        ("two_independent_games", samples::two_independent_games()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (name, qbf) in instances {
        for config in [SolverConfig::total_order(), SolverConfig::partial_order()] {
            let run_session = || {
                let mut inc = IncrementalSolver::new(qbf.clone(), config.clone());
                let mut record: Vec<(Option<bool>, Option<String>, Qbf)> = Vec::new();
                let mut query = |inc: &mut IncrementalSolver| {
                    let equivalent = inc.equivalent_qbf();
                    let (out, proof) = inc.solve_with_proof();
                    record.push((out.value(), proof, equivalent));
                };
                query(&mut inc);
                inc.push();
                // A strengthened copy of the instance's first clause.
                let c0 = qbf.matrix().clauses()[0].clone();
                let added: Vec<Lit> = c0.lits()[..1].to_vec();
                inc.add_clause(&added).unwrap();
                query(&mut inc);
                if let Some(x) = qbf
                    .prefix()
                    .bound_vars()
                    .find(|&v| qbf.prefix().is_existential(v))
                {
                    inc.assume(x.lit(false)).unwrap();
                    query(&mut inc);
                }
                inc.pop().unwrap();
                query(&mut inc);
                record
            };
            let a = run_session();
            let b = run_session();
            assert_eq!(a.len(), b.len());
            for (i, ((va, pa, qa), (vb, pb, _))) in a.iter().zip(&b).enumerate() {
                assert_eq!(va, vb, "{name}: query {i} verdict not deterministic");
                assert_eq!(pa, pb, "{name}: query {i} certificate not byte-identical");
                let text = pa
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name}: query {i}: no certificate"));
                assert!(text.starts_with("p qrp 1 "), "{name}: query {i} header");
                let verdict = check_proof(qa, text)
                    .unwrap_or_else(|e| panic!("{name}: query {i}: qbfcheck rejects: {e}"));
                assert_eq!(
                    Some(verdict),
                    *va,
                    "{name}: query {i}: certificate concludes the wrong verdict"
                );
            }
        }
    }
}
