//! Clause/cube-sharing soundness stress for the in-instance portfolio.
//!
//! Aggressive sharing — `share_len 8`, tiny exchange epochs (16
//! assignments), six-variant free rosters and the full deterministic
//! roster — on the NCF/FPV/PROB generators, cross-checked against the
//! single-threaded verdict. Built with
//! `--features qbf-core/debug-counters` (as CI does), every worker run
//! is shadow-verified by the eager counter discipline, so an unsound
//! import that perturbs propagation panics instead of mis-deciding.
//!
//! The proof gate: on a 50-instance sample, the *winning worker's*
//! self-contained `qrp 1` certificate (sharing auto-disabled under
//! proof logging) must verify against the **base** instance via the
//! independent `qbfcheck` checker — the in-process
//! `qbf_proof::check_proof` is the same code path as the CLI verifier.

use qbf_repro::core::portfolio::{self, PortfolioOptions};
use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::core::{samples, Qbf};
use qbf_repro::gen::{fpv, ncf, rand_qbf, FpvParams, NcfParams, RandParams};
use qbf_repro::prenex::portfolio::roster;
use qbf_repro::proof::check_proof;

fn base_config() -> SolverConfig {
    SolverConfig::partial_order().with_node_limit(2_000_000)
}

fn reference(label: &str, qbf: &Qbf) -> bool {
    Solver::new(qbf, base_config())
        .solve()
        .value()
        .unwrap_or_else(|| panic!("{label}: single-threaded reference hit its node limit"))
}

/// Aggressive-sharing options: every short constraint crosses threads,
/// and the deterministic exchange fires every 16 assignments.
fn aggressive(deterministic: bool, threads: usize) -> PortfolioOptions {
    PortfolioOptions {
        threads,
        share_len: 8,
        deterministic,
        epoch: 16,
        ..PortfolioOptions::default()
    }
}

/// Runs one instance under aggressive sharing in both modes and returns
/// the total number of constraints imported across all workers (for the
/// sharing-liveness assertion below).
fn stress(label: &str, qbf: &Qbf) -> u64 {
    let expected = reference(label, qbf);
    let base = base_config();
    let mut imported = 0;
    for det in [true, false] {
        let vars = roster(qbf, 6, det, &base);
        let out = portfolio::solve(&vars, &aggressive(det, 6));
        assert_eq!(
            out.value,
            Some(expected),
            "{label}: aggressive-sharing portfolio verdict (deterministic {det})"
        );
        assert!(out.share_len == 8, "{label}: sharing unexpectedly disabled");
        imported += out.workers.iter().map(|w| w.imported).sum::<u64>();
    }
    imported
}

/// NCF under aggressive sharing. These are the structured tree
/// instances the paper's PO heuristic is built for; the deterministic
/// pass exchanges every 16 assignments for many epochs.
#[test]
fn sharing_stress_ncf() {
    let params = NcfParams {
        dep: 4,
        var: 3,
        cls_ratio: 3,
        lpc: 4,
    };
    let mut imported = 0;
    for seed in 0..8u64 {
        imported += stress(&format!("ncf stress seed {seed}"), &ncf(&params, seed));
    }
    // Liveness: with 8-literal sharing on conflict-rich NCF instances,
    // the exchange machinery must actually move constraints — a silent
    // no-op here would turn the whole suite vacuous.
    assert!(imported > 0, "no constraint crossed threads over 8 NCF instances");
}

/// FPV under aggressive sharing (false-prefix variables stress the
/// pure-literal machinery the import path must coexist with).
#[test]
fn sharing_stress_fpv() {
    let params = FpvParams {
        config_vars: 3,
        branches: 3,
        branch_depth: 2,
        block_vars: 3,
        clauses_per_branch: 12,
        lpc: 4,
    };
    for seed in 0..6u64 {
        stress(&format!("fpv stress seed {seed}"), &fpv(&params, seed));
    }
}

/// PROB (random prenex three-block) under aggressive sharing: prenex
/// inputs make every TO variant share the PO's linear order, so *all*
/// pairs are exchange-compatible — the densest sharing graph.
#[test]
fn sharing_stress_prob() {
    let params = RandParams::three_block(6, 5, 6, 40, 4);
    for seed in 0..6u64 {
        stress(&format!("prob stress seed {seed}"), &rand_qbf(&params, seed));
    }
}

/// Random quantifier forests under aggressive sharing, free-running
/// mode repeated to shake out schedule-dependent import orders.
#[test]
fn sharing_stress_forests_repeated() {
    let base = base_config();
    for seed in 0..20u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0x5ee, 7, 11);
        let label = format!("forest stress seed {seed}");
        let expected = reference(&label, &q);
        let vars = roster(&q, 6, false, &base);
        for round in 0..3 {
            let out = portfolio::solve(&vars, &aggressive(false, 6));
            assert_eq!(
                out.value,
                Some(expected),
                "{label}: free aggressive-sharing verdict (round {round})"
            );
        }
    }
}

/// The proof gate: 50 instances through `solve_with_proof`; the winning
/// worker's certificate must be present, verify against the *base*
/// (partially ordered) instance, and conclude the portfolio's verdict.
#[test]
fn proof_gate_50_instances() {
    let base = base_config();
    let mut checked = 0usize;
    let mut run = |label: String, qbf: &Qbf| {
        let expected = reference(&label, qbf);
        let vars = roster(qbf, 6, true, &base);
        let opts = PortfolioOptions {
            threads: 4,
            deterministic: true,
            epoch: 64,
            ..PortfolioOptions::default()
        };
        let out = portfolio::solve_with_proof(&vars, &opts);
        assert_eq!(out.value, Some(expected), "{label}: proof-mode portfolio verdict");
        assert_eq!(out.share_len, 0, "{label}: sharing must be disabled under proof logging");
        let cert = out
            .certificate
            .as_deref()
            .unwrap_or_else(|| panic!("{label}: winner produced no concluded certificate"));
        let verified = check_proof(qbf, cert)
            .unwrap_or_else(|e| panic!("{label}: certificate rejected: {e:?}"));
        assert_eq!(verified, expected, "{label}: certificate concludes the wrong value");
        checked += 1;
    };
    // 30 random forests + the paper example + 19 structured instances.
    for seed in 0..30u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0x9f0f, 7, 10);
        run(format!("proof forest seed {seed}"), &q);
    }
    run("proof paper_example".to_string(), &samples::paper_example());
    let ncf_params = NcfParams {
        dep: 4,
        var: 2,
        cls_ratio: 3,
        lpc: 4,
    };
    for seed in 0..7u64 {
        run(format!("proof ncf seed {seed}"), &ncf(&ncf_params, seed));
    }
    let fpv_params = FpvParams {
        config_vars: 3,
        branches: 2,
        branch_depth: 2,
        block_vars: 2,
        clauses_per_branch: 8,
        lpc: 3,
    };
    for seed in 0..6u64 {
        run(format!("proof fpv seed {seed}"), &fpv(&fpv_params, seed));
    }
    let prob_params = RandParams::three_block(5, 4, 5, 30, 3);
    for seed in 0..6u64 {
        run(format!("proof prob seed {seed}"), &rand_qbf(&prob_params, seed));
    }
    assert_eq!(checked, 50, "the proof gate must cover exactly 50 instances");
}
