//! Cross-thread differential suite for the in-instance portfolio
//! (`qbf_core::portfolio` + `qbf_prenex::portfolio::roster`).
//!
//! Every instance of the `differential.rs` pool (hand samples, random
//! quantifier forests, their prenexings and miniscopings, and the
//! structured generators) runs through the portfolio in **both** modes
//! and at worker counts {1, 2, 4, 8}:
//!
//! * the portfolio verdict must agree with the single-threaded solver
//!   (and, where the pool provides it, with the exponential semantic
//!   evaluator);
//! * deterministic mode's transcript — verdict, winner, per-worker
//!   `Stats` and sharing counters — must be **byte-identical** across
//!   all thread counts and across repeated runs.
//!
//! Built with `--features qbf-core/debug-counters`, every worker run is
//! additionally shadow-verified by the eager counter discipline, so any
//! unsound imported constraint that changes propagation behaviour
//! panics here rather than surfacing as a wrong verdict downstream.

use qbf_repro::core::portfolio::{self, PortfolioOptions};
use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::core::{samples, semantics, Qbf};
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::prenex::portfolio::roster;
use qbf_repro::prenex::{miniscope, prenex, Strategy};

fn base_config() -> SolverConfig {
    SolverConfig::partial_order().with_node_limit(2_000_000)
}

/// The single-threaded reference verdict.
fn reference(label: &str, qbf: &Qbf) -> bool {
    Solver::new(qbf, base_config())
        .solve()
        .value()
        .unwrap_or_else(|| panic!("{label}: single-threaded reference hit its node limit"))
}

/// Cross-checks one instance: deterministic portfolio at thread counts
/// {1, 2, 4, 8} (byte-identical transcripts, correct verdict), a
/// repeated run (reproducible transcript), and the free-running race at
/// worker counts {1, 2, 4, 8} (correct verdict).
fn check_portfolio(label: &str, qbf: &Qbf, semantic: Option<bool>) {
    let expected = reference(label, qbf);
    if let Some(e) = semantic {
        assert_eq!(expected, e, "{label}: single-threaded solver disagrees with semantics");
    }
    let base = base_config();

    // Deterministic mode: the roster is the fixed canonical sequence,
    // so one roster serves every thread count.
    let vars = roster(qbf, 1, true, &base);
    let mut transcript: Option<String> = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = PortfolioOptions {
            threads,
            deterministic: true,
            epoch: 64,
            ..PortfolioOptions::default()
        };
        let out = portfolio::solve(&vars, &opts);
        assert_eq!(
            out.value,
            Some(expected),
            "{label}: deterministic portfolio verdict (threads {threads})"
        );
        let t = out.transcript();
        match &transcript {
            None => transcript = Some(t),
            Some(first) => assert_eq!(
                first, &t,
                "{label}: deterministic transcript differs at threads {threads}"
            ),
        }
    }
    // Repeated run at a fixed thread count: byte-reproducible.
    let opts = PortfolioOptions {
        threads: 4,
        deterministic: true,
        epoch: 64,
        ..PortfolioOptions::default()
    };
    let again = portfolio::solve(&vars, &opts).transcript();
    assert_eq!(
        transcript.as_deref(),
        Some(again.as_str()),
        "{label}: deterministic transcript not reproducible across runs"
    );

    // Free-running mode: verdict-stable for every worker count.
    for workers in [1usize, 2, 4, 8] {
        let vars = roster(qbf, workers, false, &base);
        let opts = PortfolioOptions {
            threads: workers,
            ..PortfolioOptions::default()
        };
        let out = portfolio::solve(&vars, &opts);
        assert_eq!(
            out.value,
            Some(expected),
            "{label}: free-running portfolio verdict ({workers} workers)"
        );
        // Internal consistency: every finisher agrees with the verdict.
        for w in &out.workers {
            if w.finished {
                assert_eq!(w.value, Some(expected), "{label}: finished worker {} disagrees", w.label);
            }
        }
    }
}

/// The hand-written sample formulas (prenex and non-prenex).
#[test]
fn portfolio_samples() {
    let cases: [(&str, Qbf); 6] = [
        ("paper_example", samples::paper_example()),
        ("forall_exists_xor", samples::forall_exists_xor()),
        ("exists_forall_xor", samples::exists_forall_xor()),
        ("two_independent_games", samples::two_independent_games()),
        ("sat_instance", samples::sat_instance()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (name, qbf) in cases {
        check_portfolio(name, &qbf, Some(semantics::eval(&qbf)));
    }
}

/// 150 random non-prenex quantifier forests, checked against the
/// exponential semantic evaluator (same pool as `differential.rs`).
#[test]
fn portfolio_random_forests() {
    for seed in 0..150u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0xd1f, 7, 11);
        check_portfolio(&format!("forest seed {seed}"), &q, Some(semantics::eval(&q)));
    }
}

/// 50 random forests prenexed with a rotating §V strategy, 20 of them
/// re-miniscoped (same pool as `differential.rs`). Prenex inputs
/// exercise the degenerate roster where every TO variant shares the
/// PO's linear order.
#[test]
fn portfolio_prenexed_and_miniscoped() {
    for seed in 0..50u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0xabc, 7, 10);
        let expected = semantics::eval(&q);
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let flat = prenex(&q, strategy);
        check_portfolio(&format!("prenex({strategy}) seed {seed}"), &flat, Some(expected));
        if seed < 20 {
            let mini = miniscope(&flat).expect("prenex input").qbf;
            check_portfolio(&format!("miniscope seed {seed}"), &mini, Some(expected));
        }
    }
}

/// Structured generator instances (NCF, FPV, FIXED, PROB): too large
/// for the exponential evaluator, so the single-threaded solver (itself
/// differentially validated in `differential.rs`) is the reference.
#[test]
fn portfolio_generators() {
    for seed in 0..4u64 {
        let q = ncf(
            &NcfParams {
                dep: 3,
                var: 2,
                cls_ratio: 2,
                lpc: 3,
            },
            seed,
        );
        check_portfolio(&format!("ncf seed {seed}"), &q, None);
    }
    for seed in 0..3u64 {
        let q = fpv(
            &FpvParams {
                config_vars: 3,
                branches: 2,
                branch_depth: 2,
                block_vars: 2,
                clauses_per_branch: 8,
                lpc: 3,
            },
            seed,
        );
        check_portfolio(&format!("fpv seed {seed}"), &q, None);
    }
    for seed in 0..3u64 {
        let inst = fixed(
            &FixedParams {
                groups: 2,
                depth: 2,
                block_vars: 2,
                clauses_per_group: 6,
                lpc: 3,
            },
            seed,
        );
        check_portfolio(&format!("fixed(prenex) seed {seed}"), &inst.prenex, None);
        let mini = miniscope(&inst.prenex).expect("prenex input").qbf;
        check_portfolio(&format!("fixed(miniscoped) seed {seed}"), &mini, None);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(&RandParams::three_block(4, 3, 4, 20, 3), seed);
        check_portfolio(&format!("prob seed {seed}"), &q, None);
    }
}
