//! Property-based tests (proptest) over the core invariants:
//! solver-vs-oracle agreement, prenexing/miniscoping value preservation,
//! prefix partial-order laws, and clausification equisatisfiability.

use proptest::prelude::*;

use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig};
use qbf_repro::core::{
    semantics, Clause, Lit, Matrix, Prefix, PrefixBuilder, Qbf, Quantifier, Var,
};
use qbf_repro::formula::{clausify, Formula, VarAlloc};
use qbf_repro::prenex::{miniscope, prenex, Strategy as PrenexStrategy};

/// Strategy: a random quantifier forest over `n` variables. Each variable
/// either starts a new root or attaches below a previously placed variable.
fn arb_prefix(n: usize) -> impl proptest::strategy::Strategy<Value = Prefix> {
    let choices = proptest::collection::vec((any::<bool>(), 0..100usize, any::<bool>()), n);
    choices.prop_map(move |specs| {
        let mut builder = PrefixBuilder::new(n);
        let mut blocks = Vec::new();
        for (i, (exists, parent_choice, as_root)) in specs.into_iter().enumerate() {
            let quant = if exists {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let v = Var::new(i);
            let id = if blocks.is_empty() || as_root {
                builder.add_root(quant, [v]).expect("fresh")
            } else {
                let parent = blocks[parent_choice % blocks.len()];
                builder.add_child(parent, quant, [v]).expect("fresh")
            };
            blocks.push(id);
        }
        builder.finish().expect("valid forest")
    })
}

/// Strategy: a random **well-formed** QBF (clauses drawn from root paths;
/// see `qbf_core::samples::random_qbf`). Shrinking operates on the seed.
fn arb_qbf(n: usize, max_clauses: usize) -> impl proptest::strategy::Strategy<Value = Qbf> {
    any::<u64>().prop_map(move |seed| qbf_repro::core::samples::random_qbf(seed, n, max_clauses))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every solver configuration agrees with the naive semantics.
    #[test]
    fn solver_matches_oracle(q in arb_qbf(7, 12), seed in any::<u64>()) {
        let expected = semantics::eval(&q);
        for heuristic in [
            HeuristicKind::Naive,
            HeuristicKind::VsidsLevel,
            HeuristicKind::VsidsTree,
            HeuristicKind::Random(seed),
        ] {
            for learning in [false, true] {
                for pure_literals in [false, true] {
                    let config = SolverConfig {
                        heuristic,
                        learning,
                        pure_literals,
                        ..SolverConfig::default()
                    };
                    let got = Solver::new(&q, config.clone()).solve().value();
                    prop_assert_eq!(got, Some(expected), "{} with {:?}", q, config);
                }
            }
        }
    }

    /// All four prenexing strategies preserve the value and produce prenex
    /// prefixes over the unchanged matrix.
    #[test]
    fn prenexing_preserves_value(q in arb_qbf(7, 10)) {
        let expected = semantics::eval(&q);
        for strategy in PrenexStrategy::ALL {
            let flat = prenex(&q, strategy);
            prop_assert!(flat.is_prenex());
            prop_assert_eq!(flat.matrix(), q.matrix());
            prop_assert_eq!(semantics::eval(&flat), expected, "{}", strategy);
        }
    }

    /// Miniscoping a prenex QBF preserves the value.
    #[test]
    fn miniscope_preserves_value(q in arb_qbf(7, 10)) {
        let flat = prenex(&q, PrenexStrategy::ExistsUpForallUp);
        let mini = miniscope(&flat).expect("prenex input");
        prop_assert_eq!(
            semantics::eval(&mini.qbf),
            semantics::eval(&flat),
            "{} vs {}", flat, mini.qbf
        );
    }

    /// The §VI timestamp test is a *sound over-approximation* of the §II
    /// partial order: irreflexive, antisymmetric, never missing a true `≺`
    /// pair, and never relating variables of different root subtrees. (It
    /// is intentionally not transitive: the paper's scheme may add some
    /// spurious same-quantifier pairs, which only restrict branching.)
    #[test]
    fn precedes_soundly_overapproximates(p in arb_prefix(9)) {
        let vars: Vec<Var> = (0..9).map(Var::new).collect();
        // ground truth: b is in a strict descendant block of a's block and
        // the path from a's block to b's block contains an alternation.
        let truly_precedes = |a: Var, b: Var| -> bool {
            let (Some(ba), Some(bb)) = (p.block_of(a), p.block_of(b)) else {
                return false;
            };
            let mut cur = p.block_parent(bb);
            let mut quants = vec![p.block_quant(bb)];
            let mut found = false;
            while let Some(c) = cur {
                quants.push(p.block_quant(c));
                if c == ba {
                    found = true;
                    break;
                }
                cur = p.block_parent(c);
            }
            // alternation anywhere strictly between (inclusive of the end
            // blocks' quantifier change)
            found && quants.windows(2).any(|w| w[0] != w[1])
        };
        let root_of = |a: Var| -> Option<qbf_repro::core::BlockId> {
            let mut cur = p.block_of(a)?;
            while let Some(parent) = p.block_parent(cur) {
                cur = parent;
            }
            Some(cur)
        };
        for &a in &vars {
            prop_assert!(!p.precedes(a, a), "irreflexive {a}");
            for &b in &vars {
                if p.precedes(a, b) {
                    prop_assert!(!p.precedes(b, a), "antisymmetric {a} {b}");
                    prop_assert_eq!(root_of(a), root_of(b), "cross-root {} {}", a, b);
                }
                if truly_precedes(a, b) {
                    prop_assert!(p.precedes(a, b), "missed true pair {a} ≺ {b}");
                }
                // mixed-quantifier pairs are exact: no spurious ∃/∀ pairs
                if p.precedes(a, b) && p.quant(a) != p.quant(b) {
                    prop_assert!(truly_precedes(a, b), "spurious mixed pair {a} {b}");
                }
            }
        }
    }

    /// Restriction (`ϕ_l`) commutes with the semantics: ϕ true iff the
    /// matching branch combination is.
    #[test]
    fn restriction_respects_semantics(q in arb_qbf(6, 8)) {
        let tops = q.prefix().top_vars();
        prop_assume!(!tops.is_empty());
        let z = tops[0];
        let pos = semantics::eval(&q.assign(z.positive()));
        let neg = semantics::eval(&q.assign(z.negative()));
        let whole = semantics::eval(&q);
        if q.prefix().is_universal(z) {
            prop_assert_eq!(whole, pos && neg);
        } else {
            prop_assert_eq!(whole, pos || neg);
        }
    }

    /// Clausification is equisatisfiable per input assignment (checked via
    /// the solver as a SAT oracle over the auxiliaries).
    #[test]
    fn clausify_equisat(bits in proptest::collection::vec(any::<bool>(), 4),
                        shape in 0..6u8) {
        let v = |i: usize| Formula::var(Var::new(i));
        let f = match shape {
            0 => v(0).and(v(1)).or(v(2).and(v(3).not())),
            1 => v(0).iff(v(1).xor(v(2))),
            2 => Formula::or_all([v(0), v(1), v(2)]).not().or(v(3)),
            3 => v(0).implies(v(1)).and(v(2).implies(v(3))).not(),
            4 => v(0).iff(v(1)).iff(v(2).iff(v(3))),
            _ => Formula::and_all([v(0).or(v(1)), v(2).or(v(3)), v(0).not().or(v(2).not())]),
        };
        let mut alloc = VarAlloc::new(4);
        let out = clausify(&f, &mut alloc);
        let n = alloc.num_vars();
        let mut clauses = out.clauses.clone();
        for (i, &b) in bits.iter().enumerate() {
            clauses.push(Clause::new([Var::new(i).lit(b)]).expect("unit"));
        }
        let all: Vec<Var> = (0..n).map(Var::new).collect();
        let prefix = Prefix::prenex(n, [(Quantifier::Exists, all)]).expect("fresh");
        let qbf = Qbf::new(prefix, Matrix::from_clauses(n, clauses)).expect("bound");
        let sat = Solver::new(&qbf, SolverConfig::partial_order())
            .solve()
            .value()
            .expect("no budget");
        prop_assert_eq!(sat, f.eval(&bits));
    }

    /// QDIMACS and qtree writers round-trip through their parsers.
    #[test]
    fn io_roundtrips(q in arb_qbf(6, 8)) {
        use qbf_repro::core::io::{qdimacs, qtree};
        let q2 = qtree::parse(&qtree::write(&q)).expect("qtree roundtrip");
        prop_assert_eq!(&q2, &q);
        let flat = prenex(&q, PrenexStrategy::ExistsUpForallUp);
        let flat2 = qdimacs::parse(&qdimacs::write(&flat)).expect("qdimacs roundtrip");
        prop_assert_eq!(flat2, flat);
    }

    /// Lit/Var encodings are stable.
    #[test]
    fn literal_encoding_roundtrips(code in 1i64..5000) {
        let l = Lit::from_dimacs(code);
        prop_assert_eq!(l.to_dimacs(), code);
        prop_assert_eq!(Lit::from_code(l.code()), l);
        prop_assert_eq!(!!l, l);
        let neg = Lit::from_dimacs(-code);
        prop_assert_eq!(!l, neg);
    }
}
