//! Randomized property tests over the core invariants: solver-vs-oracle
//! agreement, prenexing/miniscoping value preservation, prefix
//! partial-order laws, and clausification equisatisfiability.
//!
//! Formerly written with `proptest`; the workspace now builds hermetically
//! (no crates.io access), so these run on the in-tree seed-stable PRNG
//! (`qbf_gen::rng`) with fixed seed ranges instead of shrinking. A failure
//! message always includes the seed, which reproduces the case exactly.

use qbf_gen::rng::Rng;
use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig};
use qbf_repro::core::{
    semantics, BlockId, Clause, Lit, Matrix, Prefix, PrefixBuilder, Qbf, Quantifier, Var,
};
use qbf_repro::formula::{clausify, Formula, VarAlloc};
use qbf_repro::prenex::{miniscope, prenex, Strategy as PrenexStrategy};

/// A random quantifier forest over `n` variables. Each variable either
/// starts a new root or attaches below a previously placed variable.
fn arb_prefix(seed: u64, n: usize) -> Prefix {
    let mut rng = Rng::seed_from_u64(seed ^ 0x8f1b_bcdc_bfa5_3e0b);
    let mut builder = PrefixBuilder::new(n);
    let mut blocks: Vec<BlockId> = Vec::new();
    for i in 0..n {
        let quant = if rng.gen_bool(0.5) {
            Quantifier::Exists
        } else {
            Quantifier::Forall
        };
        let v = Var::new(i);
        let id = if blocks.is_empty() || rng.gen_bool(0.25) {
            builder.add_root(quant, [v]).expect("fresh")
        } else {
            let parent = blocks[rng.gen_range(0..blocks.len())];
            builder.add_child(parent, quant, [v]).expect("fresh")
        };
        blocks.push(id);
    }
    builder.finish().expect("valid forest")
}

/// A random **well-formed** QBF (clauses drawn from root paths; see
/// `qbf_core::samples::random_qbf`).
fn arb_qbf(seed: u64, n: usize, max_clauses: usize) -> Qbf {
    qbf_repro::core::samples::random_qbf(seed, n, max_clauses)
}

/// Every solver configuration agrees with the naive semantics.
#[test]
fn solver_matches_oracle() {
    for seed in 0..48u64 {
        let q = arb_qbf(seed.wrapping_mul(0x9e37), 7, 12);
        let expected = semantics::eval(&q);
        for heuristic in [
            HeuristicKind::Naive,
            HeuristicKind::VsidsLevel,
            HeuristicKind::VsidsTree,
            HeuristicKind::Random(seed.wrapping_mul(77) ^ 0xdead_beef),
        ] {
            for learning in [false, true] {
                for pure_literals in [false, true] {
                    let config = SolverConfig {
                        heuristic,
                        learning,
                        pure_literals,
                        ..SolverConfig::default()
                    };
                    let got = Solver::new(&q, config.clone()).solve().value();
                    assert_eq!(got, Some(expected), "seed {seed}: {q} with {config:?}");
                }
            }
        }
    }
}

/// All four prenexing strategies preserve the value and produce prenex
/// prefixes over the unchanged matrix.
#[test]
fn prenexing_preserves_value() {
    for seed in 0..64u64 {
        let q = arb_qbf(seed.wrapping_mul(31) ^ 0x517c, 7, 10);
        let expected = semantics::eval(&q);
        for strategy in PrenexStrategy::ALL {
            let flat = prenex(&q, strategy);
            assert!(flat.is_prenex(), "seed {seed}: {strategy}");
            assert_eq!(flat.matrix(), q.matrix(), "seed {seed}: {strategy}");
            assert_eq!(
                semantics::eval(&flat),
                expected,
                "seed {seed}: {strategy} on {q}"
            );
        }
    }
}

/// Miniscoping a prenex QBF preserves the value.
#[test]
fn miniscope_preserves_value() {
    for seed in 0..64u64 {
        let q = arb_qbf(seed.wrapping_mul(101) ^ 0x2bad, 7, 10);
        let flat = prenex(&q, PrenexStrategy::ExistsUpForallUp);
        let mini = miniscope(&flat).expect("prenex input");
        assert_eq!(
            semantics::eval(&mini.qbf),
            semantics::eval(&flat),
            "seed {seed}: {flat} vs {}",
            mini.qbf
        );
    }
}

/// The §VI timestamp test is a *sound over-approximation* of the §II
/// partial order: irreflexive, antisymmetric, never missing a true `≺`
/// pair, and never relating variables of different root subtrees. (It is
/// intentionally not transitive: the paper's scheme may add some spurious
/// same-quantifier pairs, which only restrict branching.)
#[test]
fn precedes_soundly_overapproximates() {
    for seed in 0..96u64 {
        let p = arb_prefix(seed, 9);
        let vars: Vec<Var> = (0..9).map(Var::new).collect();
        // ground truth: b is in a strict descendant block of a's block and
        // the path from a's block to b's block contains an alternation.
        let truly_precedes = |a: Var, b: Var| -> bool {
            let (Some(ba), Some(bb)) = (p.block_of(a), p.block_of(b)) else {
                return false;
            };
            let mut cur = p.block_parent(bb);
            let mut quants = vec![p.block_quant(bb)];
            let mut found = false;
            while let Some(c) = cur {
                quants.push(p.block_quant(c));
                if c == ba {
                    found = true;
                    break;
                }
                cur = p.block_parent(c);
            }
            found && quants.windows(2).any(|w| w[0] != w[1])
        };
        let root_of = |a: Var| -> Option<BlockId> {
            let mut cur = p.block_of(a)?;
            while let Some(parent) = p.block_parent(cur) {
                cur = parent;
            }
            Some(cur)
        };
        for &a in &vars {
            assert!(!p.precedes(a, a), "seed {seed}: irreflexive {a}");
            for &b in &vars {
                if p.precedes(a, b) {
                    assert!(!p.precedes(b, a), "seed {seed}: antisymmetric {a} {b}");
                    assert_eq!(root_of(a), root_of(b), "seed {seed}: cross-root {a} {b}");
                }
                if truly_precedes(a, b) {
                    assert!(p.precedes(a, b), "seed {seed}: missed true pair {a} ≺ {b}");
                }
                // mixed-quantifier pairs are exact: no spurious ∃/∀ pairs
                if p.precedes(a, b) && p.quant(a) != p.quant(b) {
                    assert!(
                        truly_precedes(a, b),
                        "seed {seed}: spurious mixed pair {a} {b}"
                    );
                }
            }
        }
    }
}

/// Restriction (`ϕ_l`) commutes with the semantics: ϕ true iff the
/// matching branch combination is.
#[test]
fn restriction_respects_semantics() {
    let mut checked = 0;
    for seed in 0..64u64 {
        let q = arb_qbf(seed.wrapping_mul(7919) ^ 0x0dd, 6, 8);
        let tops = q.prefix().top_vars();
        let Some(&z) = tops.first() else { continue };
        let pos = semantics::eval(&q.assign(z.positive()));
        let neg = semantics::eval(&q.assign(z.negative()));
        let whole = semantics::eval(&q);
        if q.prefix().is_universal(z) {
            assert_eq!(whole, pos && neg, "seed {seed}: ∀ restriction on {q}");
        } else {
            assert_eq!(whole, pos || neg, "seed {seed}: ∃ restriction on {q}");
        }
        checked += 1;
    }
    assert!(checked > 32, "too many vacuous prefixes: {checked}");
}

/// Clausification is equisatisfiable per input assignment (checked via the
/// solver as a SAT oracle over the auxiliaries).
#[test]
fn clausify_equisat() {
    let v = |i: usize| Formula::var(Var::new(i));
    for shape in 0..6u8 {
        for assignment in 0..16u8 {
            let bits: Vec<bool> = (0..4).map(|i| assignment & (1 << i) != 0).collect();
            let f = match shape {
                0 => v(0).and(v(1)).or(v(2).and(v(3).not())),
                1 => v(0).iff(v(1).xor(v(2))),
                2 => Formula::or_all([v(0), v(1), v(2)]).not().or(v(3)),
                3 => v(0).implies(v(1)).and(v(2).implies(v(3))).not(),
                4 => v(0).iff(v(1)).iff(v(2).iff(v(3))),
                _ => Formula::and_all([v(0).or(v(1)), v(2).or(v(3)), v(0).not().or(v(2).not())]),
            };
            let mut alloc = VarAlloc::new(4);
            let out = clausify(&f, &mut alloc);
            let n = alloc.num_vars();
            let mut clauses = out.clauses.clone();
            for (i, &b) in bits.iter().enumerate() {
                clauses.push(Clause::new([Var::new(i).lit(b)]).expect("unit"));
            }
            let all: Vec<Var> = (0..n).map(Var::new).collect();
            let prefix = Prefix::prenex(n, [(Quantifier::Exists, all)]).expect("fresh");
            let qbf = Qbf::new(prefix, Matrix::from_clauses(n, clauses)).expect("bound");
            let sat = Solver::new(&qbf, SolverConfig::partial_order())
                .solve()
                .value()
                .expect("no budget");
            assert_eq!(sat, f.eval(&bits), "shape {shape}, bits {bits:?}");
        }
    }
}

/// QDIMACS and qtree writers round-trip through their parsers.
#[test]
fn io_roundtrips() {
    use qbf_repro::core::io::{qdimacs, qtree};
    for seed in 0..64u64 {
        let q = arb_qbf(seed.wrapping_mul(613) ^ 0x10, 6, 8);
        let q2 = qtree::parse(&qtree::write(&q)).expect("qtree roundtrip");
        assert_eq!(q2, q, "seed {seed}");
        let flat = prenex(&q, PrenexStrategy::ExistsUpForallUp);
        let flat2 = qdimacs::parse(&qdimacs::write(&flat)).expect("qdimacs roundtrip");
        assert_eq!(flat2, flat, "seed {seed}");
    }
}

/// Lit/Var encodings are stable.
#[test]
fn literal_encoding_roundtrips() {
    let mut rng = Rng::seed_from_u64(0x0011_c0de);
    let codes = (1i64..=64).chain((0..256).map(|_| rng.gen_range(1..5000) as i64));
    for code in codes {
        let l = Lit::from_dimacs(code);
        assert_eq!(l.to_dimacs(), code);
        assert_eq!(Lit::from_code(l.code()), l);
        assert_eq!(!!l, l);
        let neg = Lit::from_dimacs(-code);
        assert_eq!(!l, neg);
    }
}
