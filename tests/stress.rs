//! Long-running stress tests, excluded from the default run. Execute with
//! `cargo test --release --test stress -- --ignored`.

use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig};
use qbf_repro::core::{samples, semantics};
use qbf_repro::models::{compute_diameter, dme, explore, ring, DiameterForm};
use qbf_repro::prenex::{miniscope, prenex, Strategy};

#[test]
#[ignore = "long-running differential sweep"]
fn differential_sweep_2000_instances() {
    for seed in 0..2000u64 {
        let q = samples::random_qbf(seed, 8, 14);
        let expected = semantics::eval(&q);
        for heuristic in [
            HeuristicKind::Naive,
            HeuristicKind::VsidsLevel,
            HeuristicKind::VsidsTree,
            HeuristicKind::Random(seed),
        ] {
            let config = SolverConfig {
                heuristic,
                ..SolverConfig::default()
            };
            assert_eq!(
                Solver::new(&q, config).solve().value(),
                Some(expected),
                "seed {seed} heuristic {heuristic:?}"
            );
        }
    }
}

#[test]
#[ignore = "long-running prenex/miniscope roundtrip sweep"]
fn prenex_miniscope_roundtrip_sweep() {
    for seed in 0..800u64 {
        let q = samples::random_qbf(0xabcd ^ seed, 9, 16);
        let expected = semantics::eval(&q);
        for strategy in Strategy::ALL {
            let flat = prenex(&q, strategy);
            assert_eq!(semantics::eval(&flat), expected, "seed {seed} {strategy}");
            let mini = miniscope(&flat).expect("prenex input");
            assert_eq!(semantics::eval(&mini.qbf), expected, "seed {seed} {strategy} mini");
        }
    }
}

#[test]
#[ignore = "long-running diameter computations"]
fn larger_diameters_match_bfs() {
    // Models whose probe costs stay within the budget; the exponential
    // counter/gray families outgrow any fixed budget quickly (that is the
    // Fig. 6 phenomenon itself) and are exercised by `repro fig6` instead.
    for model in [ring(5), ring(6), dme(4)] {
        let truth = explore(&model).expect("initial states").eccentricity;
        let run = compute_diameter(
            &model,
            DiameterForm::Tree,
            &SolverConfig::partial_order().with_node_limit(50_000_000),
            2 * truth + 2,
        );
        assert_eq!(run.diameter, Some(truth), "{}", model.name());
    }
}
