//! Compaction stress suite: the representation-only guarantee of the
//! arena-packed constraint store.
//!
//! Every instance of the differential pool (same seeds and generator
//! parameters as `differential.rs`) is solved twice under an aggressively
//! small learned-constraint budget (`max_learned: 3`, so database
//! reduction — and with it arena compaction — fires every few conflicts):
//! once with `compact_db: true` and once with `compact_db: false`. The
//! verdicts must agree and every search counter must be bit-identical;
//! only the three arena-memory telemetry fields (`arena_bytes_peak`,
//! `arena_bytes_reclaimed`, `compactions`) may differ, because physically
//! reclaiming tombstones is exactly the thing being toggled.
//!
//! Built with `--features qbf-core/debug-counters`, each of these runs is
//! additionally shadow-verified by the seed engine's eager counter
//! discipline, which panics if compaction corrupts a watcher, reason, or
//! sentinel reference.

use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig};
use qbf_repro::core::{samples, Qbf};
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::prenex::{miniscope, prenex, Strategy};

/// Solves `qbf` with compaction on and off under an aggressive reduction
/// schedule and asserts the runs are search-identical. Returns how many
/// compaction passes the compacting run performed, so callers can assert
/// the stress schedule actually exercised the reclamation path.
fn check_compaction(label: &str, qbf: &Qbf) -> u64 {
    let mut compactions = 0;
    for heuristic in [HeuristicKind::VsidsTree, HeuristicKind::VsidsLevel] {
        let base = SolverConfig {
            heuristic,
            learning: true,
            max_learned: 3,
            ..SolverConfig::default()
        }
        .with_node_limit(2_000_000);
        let with = Solver::new(
            qbf,
            SolverConfig {
                compact_db: true,
                ..base.clone()
            },
        )
        .solve();
        let without = Solver::new(
            qbf,
            SolverConfig {
                compact_db: false,
                ..base
            },
        )
        .solve();
        assert_eq!(
            with.value(),
            without.value(),
            "{label}: verdict changed by compaction under {heuristic:?}"
        );
        let memory_fields = ["arena_bytes_peak", "arena_bytes_reclaimed", "compactions"];
        for ((name, a), (_, b)) in with
            .stats
            .fields()
            .iter()
            .zip(without.stats.fields().iter())
        {
            if memory_fields.contains(name) {
                continue;
            }
            assert_eq!(
                a, b,
                "{label}: search counter `{name}` changed by compaction under {heuristic:?}"
            );
        }
        assert_eq!(
            without.stats.compactions, 0,
            "{label}: compact_db: false must never compact"
        );
        assert_eq!(
            without.stats.arena_bytes_reclaimed, 0,
            "{label}: compact_db: false must never reclaim"
        );
        compactions += with.stats.compactions;
    }
    compactions
}

#[test]
fn compaction_samples() {
    let cases: [(&str, Qbf); 6] = [
        ("paper_example", samples::paper_example()),
        ("forall_exists_xor", samples::forall_exists_xor()),
        ("exists_forall_xor", samples::exists_forall_xor()),
        ("two_independent_games", samples::two_independent_games()),
        ("sat_instance", samples::sat_instance()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (name, qbf) in cases {
        check_compaction(name, &qbf);
    }
}

#[test]
fn compaction_random_forests() {
    for seed in 0..150u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0xd1f, 7, 11);
        check_compaction(&format!("forest seed {seed}"), &q);
    }
}

#[test]
fn compaction_prenexed_and_miniscoped() {
    for seed in 0..50u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0xabc, 7, 10);
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let flat = prenex(&q, strategy);
        check_compaction(&format!("prenex({strategy}) seed {seed}"), &flat);
        if seed < 20 {
            let mini = miniscope(&flat).expect("prenex input").qbf;
            check_compaction(&format!("miniscope seed {seed}"), &mini);
        }
    }
}

#[test]
fn compaction_generators() {
    for seed in 0..4u64 {
        let q = ncf(
            &NcfParams {
                dep: 3,
                var: 2,
                cls_ratio: 2,
                lpc: 3,
            },
            seed,
        );
        check_compaction(&format!("ncf seed {seed}"), &q);
    }
    for seed in 0..3u64 {
        let q = fpv(
            &FpvParams {
                config_vars: 3,
                branches: 2,
                branch_depth: 2,
                block_vars: 2,
                clauses_per_branch: 8,
                lpc: 3,
            },
            seed,
        );
        check_compaction(&format!("fpv seed {seed}"), &q);
    }
    for seed in 0..3u64 {
        let inst = fixed(
            &FixedParams {
                groups: 2,
                depth: 2,
                block_vars: 2,
                clauses_per_group: 6,
                lpc: 3,
            },
            seed,
        );
        check_compaction(&format!("fixed(prenex) seed {seed}"), &inst.prenex);
        let mini = miniscope(&inst.prenex).expect("prenex input").qbf;
        check_compaction(&format!("fixed(miniscoped) seed {seed}"), &mini);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(&RandParams::three_block(4, 3, 4, 20, 3), seed);
        check_compaction(&format!("prob seed {seed}"), &q);
    }
}

/// The differential pool is deliberately small; its searches rarely
/// accumulate enough tombstoned words to cross the quarter-dead
/// compaction threshold. This pool uses the bench suite's hard
/// three-block instances, whose cube-heavy searches forget (and under
/// `max_learned: 3` constantly reclaim) dozens of constraints — so the
/// identity contract above is exercised on runs where compaction
/// demonstrably fires.
#[test]
fn compaction_fires_on_hard_instances() {
    let mut compactions = 0;
    for seed in 0..6u64 {
        let q = rand_qbf(
            &RandParams::three_block(12, 9, 12, 110, 5).with_locality(3, 10),
            seed,
        );
        compactions += check_compaction(&format!("hard three-block seed {seed}"), &q);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(
            &RandParams::three_block(16, 10, 16, 170, 5).with_locality(4, 10),
            seed,
        );
        compactions += check_compaction(&format!("large three-block seed {seed}"), &q);
    }
    assert!(
        compactions > 0,
        "the hard pool must trigger at least one compaction"
    );
}
