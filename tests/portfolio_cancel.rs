//! Cancellation coverage for the in-instance portfolio.
//!
//! Three properties:
//!
//! * a worker observes the shared stop flag within a **bounded** number
//!   of decisions after it is raised (the engine polls the flag at
//!   every decision boundary), with a `ManualClock`-driven
//!   `EngineMetrics` attached so the phase-span instrumentation rides
//!   along deterministically;
//! * a cancelled worker's session tears down cleanly: in a free-running
//!   race the losers end neither finished, nor timed out, nor
//!   panicked, and the verdict is untouched;
//! * a panicking worker never poisons shared state: the panic is
//!   contained in its report (`panicked: true`), the remaining workers
//!   keep exchanging constraints and the portfolio still decides
//!   correctly — in both drivers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qbf_repro::core::metrics::{EngineMetrics, ManualClock};
use qbf_repro::core::observe::SearchObserver;
use qbf_repro::core::portfolio::{self, PortfolioOptions, ShareClass, Variant};
use qbf_repro::core::proof::NoProof;
use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig};
use qbf_repro::core::{Lit, Qbf};
use qbf_repro::gen::{ncf, NcfParams};
use qbf_repro::prenex::portfolio::roster;

fn hardish_instance() -> Qbf {
    // ~2k assignments under the PO config: long enough that a stop flag
    // raised after 40 decisions cancels a search that would otherwise
    // keep going, small enough for debug-build CI.
    ncf(
        &NcfParams {
            dep: 6,
            var: 4,
            cls_ratio: 3,
            lpc: 5,
        },
        1,
    )
}

/// Observer that raises the portfolio stop flag after `k` decisions.
#[derive(Debug)]
struct StopAfter {
    stop: Arc<AtomicBool>,
    k: u64,
    seen: u64,
}

impl SearchObserver for StopAfter {
    fn on_decision(&mut self, _lit: Lit, _level: u32, _trail_depth: usize, _flipped: bool, _score: f64) {
        self.seen += 1;
        if self.seen == self.k {
            self.stop.store(true, Ordering::SeqCst);
        }
    }
}

/// The stop flag is observed at the next decision boundary: a worker
/// parked mid-search stops within a couple of decisions of the flag
/// being raised, and reports a budget-style (timeout) outcome rather
/// than a verdict.
#[test]
fn stop_flag_observed_within_bounded_decisions() {
    const K: u64 = 40;
    let qbf = hardish_instance();
    let config = SolverConfig::partial_order();

    // Sanity: uncancelled, the search needs far more than K decisions.
    let full = Solver::new(&qbf, config.clone()).solve();
    assert!(
        full.stats.decisions > 4 * K,
        "instance too easy for the cancellation bound ({} decisions)",
        full.stats.decisions
    );

    let stop = Arc::new(AtomicBool::new(false));
    let mut metrics = EngineMetrics::new(ManualClock::new(1));
    let mut observer = StopAfter {
        stop: Arc::clone(&stop),
        k: K,
        seen: 0,
    };
    let mut solver =
        Solver::with_instruments(&qbf, config, &mut observer, NoProof, &mut metrics);
    solver.set_stop_flag(Arc::clone(&stop));
    let out = solver.solve();

    assert!(out.is_timeout(), "a cancelled worker must not report a verdict");
    assert!(
        out.stats.decisions >= K,
        "the observer raised the flag at decision {K}, got {}",
        out.stats.decisions
    );
    assert!(
        out.stats.decisions <= K + 2,
        "stop flag observed only after {} decisions (raised at {K})",
        out.stats.decisions
    );
    // The ManualClock metrics rode along: phase spans were recorded up
    // to the cancellation point, deterministically.
    let snapshot = metrics.snapshot_json();
    assert!(
        snapshot.contains("phase_propagate"),
        "metrics snapshot missing phase spans: {snapshot}"
    );
}

/// Free-running race where the PO worker is paired with deliberately
/// slow variants (naive heuristic, no learning): the race decides
/// correctly and the cancelled losers tear down cleanly — not finished,
/// not timed out, not panicked, no poisoned locks.
#[test]
fn cancelled_losers_tear_down_cleanly() {
    let qbf = hardish_instance();
    let expected = Solver::new(&qbf, SolverConfig::partial_order())
        .solve()
        .value()
        .expect("reference verdict");
    let fast = Variant {
        label: "po".to_string(),
        qbf: qbf.clone(),
        config: SolverConfig::partial_order(),
        class: ShareClass::Partial,
    };
    let slow = |i: usize| Variant {
        label: format!("slow{i}"),
        qbf: qbf.clone(),
        config: SolverConfig {
            heuristic: HeuristicKind::Naive,
            learning: false,
            ..SolverConfig::default()
        },
        class: ShareClass::Partial,
    };
    let variants = vec![fast, slow(1), slow(2), slow(3)];
    let opts = PortfolioOptions {
        threads: 4,
        ..PortfolioOptions::default()
    };
    for round in 0..5 {
        let out = portfolio::solve(&variants, &opts);
        assert_eq!(out.value, Some(expected), "race verdict (round {round})");
        let winner = out.winner.expect("someone must win");
        assert!(out.workers[winner].finished);
        for (i, w) in out.workers.iter().enumerate() {
            assert!(!w.panicked, "worker {i} panicked (round {round})");
            if w.finished {
                // A second finisher may legitimately beat the flag; it
                // must then agree with the winner.
                assert_eq!(w.value, Some(expected), "finisher {i} disagrees (round {round})");
            } else {
                // A cancelled loser: no verdict, clean teardown.
                assert_eq!(w.value, None, "cancelled worker {i} kept a verdict (round {round})");
            }
        }
    }
}

/// Free-running driver contains a worker panic: the panicking worker is
/// flagged in its report, the winner's result is untouched, and the
/// shared pool's lock (which the panicking thread may race) stays
/// usable for the surviving workers.
#[test]
fn free_mode_panic_containment() {
    let qbf = hardish_instance();
    let base = SolverConfig::partial_order().with_node_limit(2_000_000);
    let expected = Solver::new(&qbf, base.clone())
        .solve()
        .value()
        .expect("reference verdict");
    let vars = roster(&qbf, 4, false, &base);
    let opts = PortfolioOptions {
        threads: 4,
        debug_panic_worker: Some(1),
        ..PortfolioOptions::default()
    };
    let out = portfolio::solve(&vars, &opts);
    assert_eq!(out.value, Some(expected), "panic must not change the verdict");
    assert!(out.workers[1].panicked, "injected panic not contained in the report");
    assert!(!out.workers[1].finished);
    assert_ne!(out.winner, Some(1), "a panicked worker cannot win");
}

/// Deterministic driver contains a worker panic — including of worker 0,
/// the roster's canonical first finisher on most instances — and the
/// epoch exchange keeps running for the survivors. The transcript stays
/// byte-reproducible (a contained panic is part of the deterministic
/// computation).
#[test]
fn deterministic_panic_containment_is_reproducible() {
    let qbf = hardish_instance();
    let base = SolverConfig::partial_order().with_node_limit(2_000_000);
    let expected = Solver::new(&qbf, base.clone())
        .solve()
        .value()
        .expect("reference verdict");
    let vars = roster(&qbf, 1, true, &base);
    let opts = PortfolioOptions {
        threads: 4,
        deterministic: true,
        epoch: 64,
        debug_panic_worker: Some(0),
        ..PortfolioOptions::default()
    };
    let out1 = portfolio::solve(&vars, &opts);
    assert_eq!(out1.value, Some(expected), "surviving workers must still decide");
    assert!(out1.workers[0].panicked);
    assert_ne!(out1.winner, Some(0));
    // Sharing survived the panic: the exchange is live among survivors.
    assert_eq!(out1.share_len, 4, "sharing unexpectedly disabled");
    let out2 = portfolio::solve(&vars, &opts);
    assert_eq!(
        out1.transcript(),
        out2.transcript(),
        "deterministic transcript must reproduce with a contained panic"
    );
    // And the panic-free run differs only in worker 0's fate.
    let clean = portfolio::solve(
        &vars,
        &PortfolioOptions {
            debug_panic_worker: None,
            ..opts
        },
    );
    assert_eq!(clean.value, Some(expected));
    assert!(!clean.workers[0].panicked);
}
