//! Certificate differential suite: every instance of the differential
//! pool is solved by QUBE(TO) and QUBE(PO) with proof logging attached,
//! and each emitted certificate must (a) be accepted by the independent
//! `qbf-proof` verifier, (b) certify exactly the value the solver
//! reported, and (c) be byte-identical across two runs.
//!
//! This is the machine-checked form of the paper's soundness argument:
//! TO runs certify with the prenex total order, PO runs with the
//! quantifier-tree partial order `≺` — the verifier re-implements `≺` as
//! an ancestor walk, so every ∀/∃-reduction a PO run performs is
//! re-justified outside the solver.

use qbf_repro::core::proof::ProofLog;
use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::core::{recursive, samples, Qbf};
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::prenex::{miniscope, prenex, Strategy};
use qbf_repro::proof::check_proof;

fn prove(qbf: &Qbf, config: SolverConfig) -> (Option<bool>, String) {
    let mut log = ProofLog::new();
    let out = Solver::with_proof(qbf, config.with_node_limit(2_000_000), &mut log).solve();
    (out.value(), log.as_text().to_string())
}

/// Solve + certify + verify one instance under both paper configurations.
fn check(label: &str, qbf: &Qbf) {
    let reference = recursive::solve(qbf, &recursive::RecursiveConfig::default())
        .value
        .unwrap_or_else(|| panic!("{label}: recursive reference hit its node limit"));
    for (cname, config) in [
        ("TO", SolverConfig::total_order()),
        ("PO", SolverConfig::partial_order()),
    ] {
        let (value, proof) = prove(qbf, config.clone());
        assert_eq!(value, Some(reference), "{label}/{cname}: wrong value");
        let verdict = check_proof(qbf, &proof).unwrap_or_else(|e| {
            panic!("{label}/{cname}: certificate rejected: {e}");
        });
        assert_eq!(
            verdict, reference,
            "{label}/{cname}: certificate proves the wrong value"
        );
        let (value2, proof2) = prove(qbf, config);
        assert_eq!(value, value2, "{label}/{cname}: nondeterministic value");
        assert_eq!(proof, proof2, "{label}/{cname}: certificate not byte-deterministic");
    }
}

/// Forces the database-reduction paths the small pool never reaches:
/// bench-scale instances with `max_learned` at 2 forget constraints on
/// every analysis cycle (`d` records) and accumulate enough arena
/// garbage to trigger compaction (token remapping), with and without
/// `compact_db`. These are too large for the recursive reference, so
/// the oracle is TO/PO cross-agreement plus the independent verifier.
#[test]
fn proofs_survive_db_reduction_and_compaction() {
    let (mut total_forgotten, mut total_compactions, mut total_dels) = (0u64, 0u64, 0u64);
    let pool: Vec<Qbf> = [
        RandParams::three_block(12, 9, 12, 110, 5).with_locality(3, 10),
        RandParams::three_block(16, 10, 16, 170, 5).with_locality(4, 10),
    ]
    .into_iter()
    .flat_map(|p| (0..4u64).map(move |seed| rand_qbf(&p, seed)))
    .collect();
    for (i, q) in pool.iter().enumerate() {
        let mut values = Vec::new();
        for base in [SolverConfig::total_order(), SolverConfig::partial_order()] {
            for compact in [true, false] {
                let config = SolverConfig {
                    max_learned: 2,
                    compact_db: compact,
                    ..base.clone()
                };
                let mut log = ProofLog::new();
                let out =
                    Solver::with_proof(q, config.with_node_limit(2_000_000), &mut log).solve();
                let value = out.value().unwrap_or_else(|| panic!("instance {i}: budget"));
                let verdict = check_proof(q, log.as_text()).unwrap_or_else(|e| {
                    panic!("instance {i} compact={compact}: certificate rejected: {e}");
                });
                assert_eq!(verdict, value, "instance {i}: certificate proves wrong value");
                values.push(value);
                total_forgotten += out.stats.forgotten;
                total_compactions += out.stats.compactions;
                total_dels += out.stats.proof_dels;
            }
        }
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "instance {i}: configurations disagree: {values:?}"
        );
    }
    // The whole point of this test: the pool must actually reach the
    // forget/compact machinery, or the `d`/remap paths go untested.
    assert!(total_forgotten > 0, "pool never forgot a constraint");
    assert!(total_compactions > 0, "pool never compacted the arena");
    assert!(total_dels > 0, "no `d` records were emitted");
}

#[test]
fn proofs_samples() {
    let cases: [(&str, Qbf); 6] = [
        ("paper_example", samples::paper_example()),
        ("forall_exists_xor", samples::forall_exists_xor()),
        ("exists_forall_xor", samples::exists_forall_xor()),
        ("two_independent_games", samples::two_independent_games()),
        ("sat_instance", samples::sat_instance()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (name, qbf) in cases {
        check(name, &qbf);
    }
}

#[test]
fn proofs_random_forests() {
    for seed in 0..150u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0xd1f, 7, 11);
        check(&format!("forest seed {seed}"), &q);
    }
}

#[test]
fn proofs_prenexed_and_miniscoped() {
    for seed in 0..50u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0xabc, 7, 10);
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let flat = prenex(&q, strategy);
        check(&format!("prenex({strategy}) seed {seed}"), &flat);
        if seed < 20 {
            let mini = miniscope(&flat).expect("prenex input").qbf;
            check(&format!("miniscope seed {seed}"), &mini);
        }
    }
}

#[test]
fn proofs_generators() {
    for seed in 0..4u64 {
        let q = ncf(
            &NcfParams {
                dep: 3,
                var: 2,
                cls_ratio: 2,
                lpc: 3,
            },
            seed,
        );
        check(&format!("ncf seed {seed}"), &q);
    }
    for seed in 0..3u64 {
        let q = fpv(
            &FpvParams {
                config_vars: 3,
                branches: 2,
                branch_depth: 2,
                block_vars: 2,
                clauses_per_branch: 8,
                lpc: 3,
            },
            seed,
        );
        check(&format!("fpv seed {seed}"), &q);
    }
    for seed in 0..3u64 {
        let inst = fixed(
            &FixedParams {
                groups: 2,
                depth: 2,
                block_vars: 2,
                clauses_per_group: 6,
                lpc: 3,
            },
            seed,
        );
        check(&format!("fixed(prenex) seed {seed}"), &inst.prenex);
        let mini = miniscope(&inst.prenex).expect("prenex input").qbf;
        check(&format!("fixed(miniscoped) seed {seed}"), &mini);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(&RandParams::three_block(4, 3, 4, 20, 3), seed);
        check(&format!("prob seed {seed}"), &q);
    }
}
