//! Differential testing of the four evaluators: the naive semantic
//! evaluator (`semantics::eval`), the recursive Q-DLL of Fig. 1
//! (`recursive::solve`), the iterative watched-literal solver
//! (`solver::Solver`) under every branching heuristic with learning on
//! and off, and the expansion engine (`qbf_expand`) under both
//! dependency schemes — a structurally independent decision procedure
//! that shares no search code with the other three.
//!
//! The instance pool mixes prenex and non-prenex inputs: the hand-written
//! samples, random quantifier forests (`samples::random_qbf`), their
//! prenexings under all four strategies of §V, miniscoped forms, and
//! small structured instances from the `qbf-gen` generators. Well over
//! 200 instances are cross-checked.
//!
//! Built with `--features qbf-core/debug-counters`, every solver run in
//! here is additionally shadow-verified: the seed engine's eager counter
//! discipline runs next to the watched propagator and panics on any
//! missed conflict, solution, or original-constraint unit (see
//! `solver/engine.rs`), turning this file into the watched-vs-counter
//! differential suite as well.

use qbf_repro::core::solver::{HeuristicKind, Solver, SolverConfig, Stats};
use qbf_repro::core::{recursive, samples, semantics, Qbf};
use qbf_repro::expand::{self, ExpandConfig};
use qbf_repro::gen::{fixed, fpv, ncf, rand_qbf, FixedParams, FpvParams, NcfParams, RandParams};
use qbf_repro::prenex::{miniscope, prenex, Strategy};

/// All iterative configurations under test: every heuristic, learning on
/// and off (pure literals stay on — the recursive reference uses them
/// too, and `properties.rs` already sweeps the pure-literal axis).
fn iterative_configs() -> Vec<SolverConfig> {
    let mut configs = Vec::new();
    for heuristic in [
        HeuristicKind::Naive,
        HeuristicKind::VsidsLevel,
        HeuristicKind::VsidsTree,
        HeuristicKind::Random(0x5eed_cafe),
    ] {
        for learning in [false, true] {
            configs.push(SolverConfig {
                heuristic,
                learning,
                ..SolverConfig::default()
            });
        }
    }
    configs
}

fn solve_iterative(qbf: &Qbf, config: &SolverConfig) -> (Option<bool>, Stats) {
    let out = Solver::new(qbf, config.clone().with_node_limit(2_000_000)).solve();
    (out.value(), out.stats)
}

/// Cross-checks one instance against a known expected value (or, when
/// `expected` is `None`, against the recursive reference only).
fn check(label: &str, qbf: &Qbf, expected: Option<bool>) {
    let reference = recursive::solve(qbf, &recursive::RecursiveConfig::default())
        .value
        .unwrap_or_else(|| panic!("{label}: recursive reference hit its node limit"));
    if let Some(e) = expected {
        assert_eq!(reference, e, "{label}: recursive Q-DLL disagrees with semantics");
    }
    for config in iterative_configs() {
        let (got, stats) = solve_iterative(qbf, &config);
        assert_eq!(
            got,
            Some(reference),
            "{label}: iterative solver disagrees under {config:?}"
        );
        // Determinism: the engine is seed-stable, so a second run must
        // reproduce the statistics bit-for-bit (and, with
        // `debug-counters`, re-pass every shadow cross-check).
        let (got2, stats2) = solve_iterative(qbf, &config);
        assert_eq!(got, got2, "{label}: nondeterministic value under {config:?}");
        assert_eq!(stats, stats2, "{label}: nondeterministic stats under {config:?}");
    }
    // Third oracle: the expansion engine, under the tree (PO) and
    // ordered (TO) dependency schemes, must agree with the search
    // reference, and its stats must replay byte-identically.
    for config in [ExpandConfig::tree(), ExpandConfig::ordered()] {
        let out = expand::solve(qbf, config);
        assert_eq!(
            out.value,
            Some(reference),
            "{label}: expansion engine disagrees under {config:?}"
        );
        let again = expand::solve(qbf, config);
        assert_eq!(
            out.stats, again.stats,
            "{label}: nondeterministic expansion stats under {config:?}"
        );
    }
}

/// The hand-written sample formulas (prenex and non-prenex).
#[test]
fn differential_samples() {
    let cases: [(&str, Qbf); 6] = [
        ("paper_example", samples::paper_example()),
        ("forall_exists_xor", samples::forall_exists_xor()),
        ("exists_forall_xor", samples::exists_forall_xor()),
        ("two_independent_games", samples::two_independent_games()),
        ("sat_instance", samples::sat_instance()),
        ("unsat_instance", samples::unsat_instance()),
    ];
    for (name, qbf) in cases {
        check(name, &qbf, Some(semantics::eval(&qbf)));
    }
}

/// 150 random non-prenex quantifier forests, checked against the
/// exponential semantic evaluator.
#[test]
fn differential_random_forests() {
    for seed in 0..150u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x9e37_79b9) ^ 0xd1f, 7, 11);
        check(&format!("forest seed {seed}"), &q, Some(semantics::eval(&q)));
    }
}

/// 50 random forests, each prenexed with a rotating §V strategy (prenex
/// inputs exercise the degenerate left-to-right partial order) and 20
/// re-miniscoped (non-prenex inputs with reconstructed structure).
#[test]
fn differential_prenexed_and_miniscoped() {
    for seed in 0..50u64 {
        let q = samples::random_qbf(seed.wrapping_mul(0x61c8_8647) ^ 0xabc, 7, 10);
        let expected = semantics::eval(&q);
        let strategy = Strategy::ALL[seed as usize % Strategy::ALL.len()];
        let flat = prenex(&q, strategy);
        check(&format!("prenex({strategy}) seed {seed}"), &flat, Some(expected));
        if seed < 20 {
            let mini = miniscope(&flat).expect("prenex input").qbf;
            check(&format!("miniscope seed {seed}"), &mini, Some(expected));
        }
    }
}

/// Structured generator instances (NCF, FPV, FIXED, PROB): too large for
/// the exponential evaluator, so the recursive Q-DLL is the reference.
#[test]
fn differential_generators() {
    for seed in 0..4u64 {
        let q = ncf(
            &NcfParams {
                dep: 3,
                var: 2,
                cls_ratio: 2,
                lpc: 3,
            },
            seed,
        );
        check(&format!("ncf seed {seed}"), &q, None);
    }
    for seed in 0..3u64 {
        let q = fpv(
            &FpvParams {
                config_vars: 3,
                branches: 2,
                branch_depth: 2,
                block_vars: 2,
                clauses_per_branch: 8,
                lpc: 3,
            },
            seed,
        );
        check(&format!("fpv seed {seed}"), &q, None);
    }
    for seed in 0..3u64 {
        let inst = fixed(
            &FixedParams {
                groups: 2,
                depth: 2,
                block_vars: 2,
                clauses_per_group: 6,
                lpc: 3,
            },
            seed,
        );
        check(&format!("fixed(prenex) seed {seed}"), &inst.prenex, None);
        let mini = miniscope(&inst.prenex).expect("prenex input").qbf;
        check(&format!("fixed(miniscoped) seed {seed}"), &mini, None);
    }
    for seed in 0..3u64 {
        let q = rand_qbf(&RandParams::three_block(4, 3, 4, 20, 3), seed);
        check(&format!("prob seed {seed}"), &q, None);
    }
}

/// High-alternation PROB stress: 12 thin alternating blocks,
/// underconstrained enough to stay true. Alternation depth is what
/// separates the paradigms — plain backtracking re-verifies every
/// universal branch while the abstractions only grow with the
/// assignments actually needed — so on top of the usual four-way
/// agreement this asserts that on at least one instance the expansion
/// engine concludes within a tenth of the work plain backtracking
/// (`SolverConfig::basic`, the Q-DLL baseline without learning) needs.
#[test]
fn differential_high_alternation_stress() {
    let params = RandParams {
        block_sizes: vec![2; 12],
        clauses: 36,
        lpc: 5,
        locality_groups: 1,
        cross_percent: 0,
    };
    let mut expansion_won = false;
    for seed in 0..6u64 {
        let q = rand_qbf(&params, seed);
        let label = format!("high-alt seed {seed}");
        check(&label, &q, None);
        let expand_cost = [ExpandConfig::tree(), ExpandConfig::ordered()]
            .into_iter()
            .map(|config| {
                let out = expand::solve(&q, config);
                assert!(out.value.is_some(), "{label}: expansion inconclusive");
                out.stats.sat_decisions + out.stats.sat_propagations
            })
            .min()
            .expect("two schemes ran");
        let basic = Solver::new(
            &q,
            SolverConfig::basic().with_node_limit(expand_cost.saturating_mul(10)),
        )
        .solve();
        if basic.value().is_none() {
            expansion_won = true;
        }
    }
    assert!(
        expansion_won,
        "expansion never beat a 10x plain-backtracking budget on the high-alternation pool"
    );
}
