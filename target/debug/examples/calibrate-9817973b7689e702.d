/root/repo/target/debug/examples/calibrate-9817973b7689e702.d: crates/bench/examples/calibrate.rs

/root/repo/target/debug/examples/calibrate-9817973b7689e702: crates/bench/examples/calibrate.rs

crates/bench/examples/calibrate.rs:
