/root/repo/target/debug/examples/diameter-66becbf8bc01cc37.d: examples/diameter.rs

/root/repo/target/debug/examples/diameter-66becbf8bc01cc37: examples/diameter.rs

examples/diameter.rs:
