/root/repo/target/debug/examples/prenexing-3027f78f3a19a8cd.d: examples/prenexing.rs

/root/repo/target/debug/examples/prenexing-3027f78f3a19a8cd: examples/prenexing.rs

examples/prenexing.rs:
