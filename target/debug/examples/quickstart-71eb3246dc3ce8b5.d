/root/repo/target/debug/examples/quickstart-71eb3246dc3ce8b5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-71eb3246dc3ce8b5: examples/quickstart.rs

examples/quickstart.rs:
