/root/repo/target/debug/deps/qbf_core-bff71db7d2a04a21.d: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/matrix.rs crates/core/src/prefix.rs crates/core/src/qbf.rs crates/core/src/var.rs crates/core/src/io/mod.rs crates/core/src/io/qdimacs.rs crates/core/src/io/qtree.rs crates/core/src/preprocess.rs crates/core/src/recursive.rs crates/core/src/samples.rs crates/core/src/semantics.rs crates/core/src/solver/mod.rs crates/core/src/solver/db.rs crates/core/src/solver/engine.rs crates/core/src/solver/heuristic.rs crates/core/src/stats.rs crates/core/src/witness.rs

/root/repo/target/debug/deps/libqbf_core-bff71db7d2a04a21.rlib: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/matrix.rs crates/core/src/prefix.rs crates/core/src/qbf.rs crates/core/src/var.rs crates/core/src/io/mod.rs crates/core/src/io/qdimacs.rs crates/core/src/io/qtree.rs crates/core/src/preprocess.rs crates/core/src/recursive.rs crates/core/src/samples.rs crates/core/src/semantics.rs crates/core/src/solver/mod.rs crates/core/src/solver/db.rs crates/core/src/solver/engine.rs crates/core/src/solver/heuristic.rs crates/core/src/stats.rs crates/core/src/witness.rs

/root/repo/target/debug/deps/libqbf_core-bff71db7d2a04a21.rmeta: crates/core/src/lib.rs crates/core/src/clause.rs crates/core/src/matrix.rs crates/core/src/prefix.rs crates/core/src/qbf.rs crates/core/src/var.rs crates/core/src/io/mod.rs crates/core/src/io/qdimacs.rs crates/core/src/io/qtree.rs crates/core/src/preprocess.rs crates/core/src/recursive.rs crates/core/src/samples.rs crates/core/src/semantics.rs crates/core/src/solver/mod.rs crates/core/src/solver/db.rs crates/core/src/solver/engine.rs crates/core/src/solver/heuristic.rs crates/core/src/stats.rs crates/core/src/witness.rs

crates/core/src/lib.rs:
crates/core/src/clause.rs:
crates/core/src/matrix.rs:
crates/core/src/prefix.rs:
crates/core/src/qbf.rs:
crates/core/src/var.rs:
crates/core/src/io/mod.rs:
crates/core/src/io/qdimacs.rs:
crates/core/src/io/qtree.rs:
crates/core/src/preprocess.rs:
crates/core/src/recursive.rs:
crates/core/src/samples.rs:
crates/core/src/semantics.rs:
crates/core/src/solver/mod.rs:
crates/core/src/solver/db.rs:
crates/core/src/solver/engine.rs:
crates/core/src/solver/heuristic.rs:
crates/core/src/stats.rs:
crates/core/src/witness.rs:
