/root/repo/target/debug/deps/qbf_gen-522ca3207ff0f36b.d: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

/root/repo/target/debug/deps/libqbf_gen-522ca3207ff0f36b.rlib: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

/root/repo/target/debug/deps/libqbf_gen-522ca3207ff0f36b.rmeta: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

crates/gen/src/lib.rs:
crates/gen/src/fixed.rs:
crates/gen/src/fpv.rs:
crates/gen/src/ncf.rs:
crates/gen/src/planning.rs:
crates/gen/src/rand_qbf.rs:
crates/gen/src/rng.rs:
