/root/repo/target/debug/deps/repro-5c46fe27cc24e564.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-5c46fe27cc24e564: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
