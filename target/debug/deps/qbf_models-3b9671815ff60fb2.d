/root/repo/target/debug/deps/qbf_models-3b9671815ff60fb2.d: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

/root/repo/target/debug/deps/qbf_models-3b9671815ff60fb2: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

crates/models/src/lib.rs:
crates/models/src/diameter.rs:
crates/models/src/explicit.rs:
crates/models/src/model.rs:
