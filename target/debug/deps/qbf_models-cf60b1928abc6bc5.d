/root/repo/target/debug/deps/qbf_models-cf60b1928abc6bc5.d: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

/root/repo/target/debug/deps/libqbf_models-cf60b1928abc6bc5.rlib: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

/root/repo/target/debug/deps/libqbf_models-cf60b1928abc6bc5.rmeta: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

crates/models/src/lib.rs:
crates/models/src/diameter.rs:
crates/models/src/explicit.rs:
crates/models/src/model.rs:
