/root/repo/target/debug/deps/qbf_gen-3d8c369991895e0c.d: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

/root/repo/target/debug/deps/qbf_gen-3d8c369991895e0c: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

crates/gen/src/lib.rs:
crates/gen/src/fixed.rs:
crates/gen/src/fpv.rs:
crates/gen/src/ncf.rs:
crates/gen/src/planning.rs:
crates/gen/src/rand_qbf.rs:
crates/gen/src/rng.rs:
