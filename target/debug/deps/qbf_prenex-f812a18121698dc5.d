/root/repo/target/debug/deps/qbf_prenex-f812a18121698dc5.d: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

/root/repo/target/debug/deps/qbf_prenex-f812a18121698dc5: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

crates/prenex/src/lib.rs:
crates/prenex/src/miniscope.rs:
crates/prenex/src/strategy.rs:
