/root/repo/target/debug/deps/qbfsolve-b9e48ea530480101.d: crates/core/src/bin/qbfsolve.rs

/root/repo/target/debug/deps/qbfsolve-b9e48ea530480101: crates/core/src/bin/qbfsolve.rs

crates/core/src/bin/qbfsolve.rs:
