/root/repo/target/debug/deps/properties-8b4b11435c04e090.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8b4b11435c04e090: tests/properties.rs

tests/properties.rs:
