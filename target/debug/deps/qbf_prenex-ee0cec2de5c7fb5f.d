/root/repo/target/debug/deps/qbf_prenex-ee0cec2de5c7fb5f.d: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

/root/repo/target/debug/deps/libqbf_prenex-ee0cec2de5c7fb5f.rlib: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

/root/repo/target/debug/deps/libqbf_prenex-ee0cec2de5c7fb5f.rmeta: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

crates/prenex/src/lib.rs:
crates/prenex/src/miniscope.rs:
crates/prenex/src/strategy.rs:
