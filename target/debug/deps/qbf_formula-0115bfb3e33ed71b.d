/root/repo/target/debug/deps/qbf_formula-0115bfb3e33ed71b.d: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

/root/repo/target/debug/deps/libqbf_formula-0115bfb3e33ed71b.rlib: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

/root/repo/target/debug/deps/libqbf_formula-0115bfb3e33ed71b.rmeta: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

crates/formula/src/lib.rs:
crates/formula/src/ast.rs:
crates/formula/src/cnf.rs:
