/root/repo/target/debug/deps/qbf_repro-ae2c9e790389c896.d: src/lib.rs

/root/repo/target/debug/deps/qbf_repro-ae2c9e790389c896: src/lib.rs

src/lib.rs:
