/root/repo/target/debug/deps/qbf_bench-46b3145e0a21a74c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/suites.rs

/root/repo/target/debug/deps/libqbf_bench-46b3145e0a21a74c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/suites.rs

/root/repo/target/debug/deps/libqbf_bench-46b3145e0a21a74c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/suites.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/suites.rs:
