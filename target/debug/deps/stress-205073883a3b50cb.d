/root/repo/target/debug/deps/stress-205073883a3b50cb.d: tests/stress.rs

/root/repo/target/debug/deps/stress-205073883a3b50cb: tests/stress.rs

tests/stress.rs:
