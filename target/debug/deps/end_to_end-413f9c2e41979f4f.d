/root/repo/target/debug/deps/end_to_end-413f9c2e41979f4f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-413f9c2e41979f4f: tests/end_to_end.rs

tests/end_to_end.rs:
