/root/repo/target/debug/deps/qbf_repro-5e3de6dcc4deaf6f.d: src/lib.rs

/root/repo/target/debug/deps/libqbf_repro-5e3de6dcc4deaf6f.rlib: src/lib.rs

/root/repo/target/debug/deps/libqbf_repro-5e3de6dcc4deaf6f.rmeta: src/lib.rs

src/lib.rs:
