/root/repo/target/debug/deps/qbf_bench-9b9af53edbabda20.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/suites.rs

/root/repo/target/debug/deps/qbf_bench-9b9af53edbabda20: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/suites.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/suites.rs:
