/root/repo/target/debug/deps/qbf_formula-d461b0e141b1eab3.d: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

/root/repo/target/debug/deps/qbf_formula-d461b0e141b1eab3: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

crates/formula/src/lib.rs:
crates/formula/src/ast.rs:
crates/formula/src/cnf.rs:
