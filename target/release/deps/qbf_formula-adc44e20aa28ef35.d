/root/repo/target/release/deps/qbf_formula-adc44e20aa28ef35.d: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

/root/repo/target/release/deps/libqbf_formula-adc44e20aa28ef35.rlib: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

/root/repo/target/release/deps/libqbf_formula-adc44e20aa28ef35.rmeta: crates/formula/src/lib.rs crates/formula/src/ast.rs crates/formula/src/cnf.rs

crates/formula/src/lib.rs:
crates/formula/src/ast.rs:
crates/formula/src/cnf.rs:
