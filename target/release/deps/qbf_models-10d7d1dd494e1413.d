/root/repo/target/release/deps/qbf_models-10d7d1dd494e1413.d: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

/root/repo/target/release/deps/libqbf_models-10d7d1dd494e1413.rlib: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

/root/repo/target/release/deps/libqbf_models-10d7d1dd494e1413.rmeta: crates/models/src/lib.rs crates/models/src/diameter.rs crates/models/src/explicit.rs crates/models/src/model.rs

crates/models/src/lib.rs:
crates/models/src/diameter.rs:
crates/models/src/explicit.rs:
crates/models/src/model.rs:
