/root/repo/target/release/deps/qbf_gen-2315f907ecdbb6c0.d: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

/root/repo/target/release/deps/libqbf_gen-2315f907ecdbb6c0.rlib: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

/root/repo/target/release/deps/libqbf_gen-2315f907ecdbb6c0.rmeta: crates/gen/src/lib.rs crates/gen/src/fixed.rs crates/gen/src/fpv.rs crates/gen/src/ncf.rs crates/gen/src/planning.rs crates/gen/src/rand_qbf.rs crates/gen/src/rng.rs

crates/gen/src/lib.rs:
crates/gen/src/fixed.rs:
crates/gen/src/fpv.rs:
crates/gen/src/ncf.rs:
crates/gen/src/planning.rs:
crates/gen/src/rand_qbf.rs:
crates/gen/src/rng.rs:
