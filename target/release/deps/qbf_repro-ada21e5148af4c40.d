/root/repo/target/release/deps/qbf_repro-ada21e5148af4c40.d: src/lib.rs

/root/repo/target/release/deps/libqbf_repro-ada21e5148af4c40.rlib: src/lib.rs

/root/repo/target/release/deps/libqbf_repro-ada21e5148af4c40.rmeta: src/lib.rs

src/lib.rs:
