/root/repo/target/release/deps/qbf_prenex-d83329a3471b8594.d: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

/root/repo/target/release/deps/libqbf_prenex-d83329a3471b8594.rlib: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

/root/repo/target/release/deps/libqbf_prenex-d83329a3471b8594.rmeta: crates/prenex/src/lib.rs crates/prenex/src/miniscope.rs crates/prenex/src/strategy.rs

crates/prenex/src/lib.rs:
crates/prenex/src/miniscope.rs:
crates/prenex/src/strategy.rs:
