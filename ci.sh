#!/bin/sh
# Local CI gate. The workspace is hermetic (no crates.io dependencies),
# so everything here runs fully offline. See README "Offline-build
# policy".
set -eu

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test --workspace --features qbf-core/debug-counters"
# Re-runs the whole suite with the eager counter discipline shadowing the
# watched-literal propagator (panics on any propagation divergence).
cargo test -q --workspace --features qbf-core/debug-counters

echo "==> repro bench-smoke (telemetry determinism gate)"
# Runs a micro benchmark suite twice and asserts the machine-readable
# BENCH_qbf.json aggregate is byte-identical across runs and parses with
# the in-tree JSON reader. Writes under target/repro-smoke so the
# committed BENCH_qbf.json at the repo root is never clobbered.
cargo run -q --release -p qbf-bench --bin repro -- --out target/repro-smoke --jobs 1 bench-smoke

echo "==> repro bench-smoke --jobs 4 (parallel determinism gate)"
# The --jobs fan-out parallelizes only the measurement phase; aggregation
# stays sequential in instance order, so the smoke benchmark must produce
# a byte-identical BENCH_qbf_smoke.json at any worker count.
cargo run -q --release -p qbf-bench --bin repro -- --out target/repro-smoke-jobs4 --jobs 4 bench-smoke
cmp target/repro-smoke/BENCH_qbf_smoke.json target/repro-smoke-jobs4/BENCH_qbf_smoke.json

echo "==> certificate gate (solve with --proof, verify with qbfcheck, byte-determinism)"
# The release differential suite already certifies all 239 pool
# instances under TO and PO; here the *binaries* are exercised
# end-to-end: qbfsolve writes a certificate twice, qbfcheck must accept
# it, and the two runs must be byte-identical.
cargo test -q --release --test proof_differential
mkdir -p target/proof-gate
for cfg in --to --po; do
    # paper_example is false: qbfsolve exits 20, qbfcheck prints VERIFIED 0.
    ./target/release/qbfsolve $cfg --proof=target/proof-gate/a.qrp data/paper_example.qtree || [ $? -eq 20 ]
    ./target/release/qbfsolve $cfg --proof=target/proof-gate/b.qrp data/paper_example.qtree || [ $? -eq 20 ]
    cmp target/proof-gate/a.qrp target/proof-gate/b.qrp
    ./target/release/qbfcheck data/paper_example.qtree target/proof-gate/a.qrp
done

echo "==> qbfserve session replay gate (byte-determinism + per-query certificates)"
# Pipes a scripted incremental session (push/add/assume/solve/pop plus
# deliberate protocol errors) through the long-lived qbfserve service
# twice and asserts the transcripts are byte-identical. Each certified
# query dumps its qrp certificate and the frame-restricted instance it
# proves; qbfcheck must accept every pair.
mkdir -p target/serve-gate
cat > target/serve-gate/session.jsonl <<'EOF'
{"cmd":"solve","proof":true}
{"cmd":"proof","path":"target/serve-gate/q1.qrp","instance":"target/serve-gate/q1.qtree"}
{"cmd":"push"}
{"cmd":"add","lits":[3]}
{"cmd":"assume","lit":-1}
{"cmd":"solve","proof":true}
{"cmd":"proof","path":"target/serve-gate/q2.qrp","instance":"target/serve-gate/q2.qtree"}
{"cmd":"stats"}
{"cmd":"pop"}
{"cmd":"pop"}
{"cmd":"frobnicate"}
not json at all
{"cmd":"solve","proof":true}
{"cmd":"proof","path":"target/serve-gate/q3.qrp","instance":"target/serve-gate/q3.qtree"}
EOF
./target/release/qbfserve --po data/paper_example.qtree \
    < target/serve-gate/session.jsonl > target/serve-gate/transcript-a.txt
./target/release/qbfserve --po data/paper_example.qtree \
    < target/serve-gate/session.jsonl > target/serve-gate/transcript-b.txt
cmp target/serve-gate/transcript-a.txt target/serve-gate/transcript-b.txt
for q in q1 q2 q3; do
    ./target/release/qbfcheck target/serve-gate/$q.qtree target/serve-gate/$q.qrp
done

echo "==> qbfserve metrics gate (ManualClock byte-determinism + qbfstat round-trip)"
# Replays a metrics-instrumented session twice under --manual-clock (the
# deterministic Clock: every read advances a fixed step, so latencies are
# pure functions of the script) and asserts both the transcript — which
# includes the {"cmd":"metrics"} Prometheus exposition — and the
# --metrics-jsonl snapshot stream are byte-identical. qbfstat must then
# accept the stream it just wrote.
mkdir -p target/metrics-gate
cat > target/metrics-gate/session.jsonl <<'EOF'
{"cmd":"solve"}
{"cmd":"push"}
{"cmd":"add","lits":[3]}
{"cmd":"assume","lit":-1}
{"cmd":"solve"}
{"cmd":"pop"}
{"cmd":"frobnicate"}
{"cmd":"solve"}
{"cmd":"stats"}
{"cmd":"metrics"}
{"cmd":"metrics","format":"json"}
EOF
for run in a b; do
    ./target/release/qbfserve --po --manual-clock --metrics-every 2 --progress 2 \
        --metrics-jsonl target/metrics-gate/stream-$run.jsonl data/paper_example.qtree \
        < target/metrics-gate/session.jsonl > target/metrics-gate/transcript-$run.txt
done
cmp target/metrics-gate/transcript-a.txt target/metrics-gate/transcript-b.txt
cmp target/metrics-gate/stream-a.jsonl target/metrics-gate/stream-b.jsonl
./target/release/qbfstat snapshots target/metrics-gate/stream-a.jsonl

echo "==> qbfstat round-trip on the committed bench artifacts"
# The strict readers must accept the committed aggregate and the smoke
# telemetry written above, and the self-diff must report no drift (exit
# 0). Finally, re-assert that nothing in this run clobbered the committed
# BENCH_qbf.json.
./target/release/qbfstat bench BENCH_qbf.json
./target/release/qbfstat summary target/repro-smoke/BENCH_qbf_smoke_telemetry.jsonl --top 5
./target/release/qbfstat diff BENCH_qbf.json BENCH_qbf.json
git diff --quiet -- BENCH_qbf.json || {
    echo "ci.sh: committed BENCH_qbf.json was modified"; exit 1;
}

echo "==> repro bench-incremental (incremental-vs-cold DIA gate)"
# Solves DIA probe families through one incremental session and cold,
# twice: verdicts must agree, the incremental totals must not exceed the
# cold totals, and the aggregate must be byte-deterministic. Writes its
# own BENCH_qbf_incremental.json artifact; the committed BENCH_qbf.json
# is never touched (incrementality is opt-in).
cargo run -q --release -p qbf-bench --bin repro -- --out target/serve-gate bench-incremental

echo "==> portfolio gate (deterministic transcripts + bench round-trip)"
# Deterministic portfolio runs must produce byte-identical transcripts
# regardless of thread count and across repeated invocations: the fixed
# 8-variant roster races in lockstep epochs, so the transcript is a pure
# function of the instance. paper_example is false (exit 20).
mkdir -p target/portfolio-gate
./target/release/qbfsolve --po --deterministic --portfolio 1 \
    --portfolio-out target/portfolio-gate/t1.txt data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfsolve --po --deterministic --portfolio 4 \
    --portfolio-out target/portfolio-gate/t4a.txt data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfsolve --po --deterministic --portfolio 4 \
    --portfolio-out target/portfolio-gate/t4b.txt data/paper_example.qtree || [ $? -eq 20 ]
cmp target/portfolio-gate/t4a.txt target/portfolio-gate/t4b.txt
cmp target/portfolio-gate/t1.txt target/portfolio-gate/t4a.txt
# A portfolio winner's self-contained certificate must verify against the
# base instance (sharing is auto-disabled under --proof).
./target/release/qbfsolve --po --deterministic --portfolio 4 \
    --proof=target/portfolio-gate/w.qrp data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfcheck data/paper_example.qtree target/portfolio-gate/w.qrp
# bench-portfolio internally runs its deterministic sample twice and
# asserts byte-identity; the wall-clock speedup gate engages when >= 4
# cores are available (override with QBF_PORTFOLIO_MIN_SPEEDUP). The
# artifact must round-trip through the strict qbfstat diff reader.
cargo run -q --release -p qbf-bench --bin repro -- --out target/portfolio-gate bench-portfolio
./target/release/qbfstat diff target/portfolio-gate/BENCH_qbf_portfolio.json \
    target/portfolio-gate/BENCH_qbf_portfolio.json

echo "==> expansion engine gate (second-paradigm agreement + determinism)"
# The release differential suite runs the expansion engine (both
# dependency schemes) as the third oracle over the whole instance pool;
# here the binaries are exercised end-to-end. paper_example is false:
# qbfsolve --engine expand must exit 20 under both schemes, and an
# unknown engine must be the strict-parser exit 2.
mkdir -p target/expand-gate
cargo test -q --release --test differential
./target/release/qbfsolve --engine expand data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfsolve --engine expand --to data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfsolve --engine bogus data/paper_example.qtree 2>/dev/null && {
    echo "ci.sh: unknown --engine must fail"; exit 1;
} || [ $? -eq 2 ]
# bench-engines runs search and expansion head to head twice in-process
# and asserts byte-identity itself; a second invocation must reproduce
# the artifact byte-for-byte across processes too, and it must
# round-trip through the strict qbfstat diff reader.
cargo run -q --release -p qbf-bench --bin repro -- --out target/expand-gate bench-engines
cargo run -q --release -p qbf-bench --bin repro -- --out target/expand-gate-b bench-engines
cmp target/expand-gate/BENCH_qbf_engines.json target/expand-gate-b/BENCH_qbf_engines.json
./target/release/qbfstat diff target/expand-gate/BENCH_qbf_engines.json \
    target/expand-gate-b/BENCH_qbf_engines.json
# Cross-paradigm portfolio: search and expansion race in-process with
# first-finisher cancellation; in deterministic mode the transcript
# (search stats + expansion engine counters) must replay byte-identically
# for any thread count.
./target/release/qbfsolve --po --deterministic --portfolio 1 --portfolio-expand \
    --portfolio-out target/expand-gate/x1.txt data/paper_example.qtree || [ $? -eq 20 ]
./target/release/qbfsolve --po --deterministic --portfolio 4 --portfolio-expand \
    --portfolio-out target/expand-gate/x4.txt data/paper_example.qtree || [ $? -eq 20 ]
cmp target/expand-gate/x1.txt target/expand-gate/x4.txt
grep -q "expand-po" target/expand-gate/x4.txt || {
    echo "ci.sh: expansion workers missing from the mixed transcript"; exit 1;
}

echo "==> cargo clippy (best effort)"
# clippy may not be installed in minimal offline toolchains; treat its
# absence as a skip, but deny warnings when it is available.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy unavailable; skipped"
fi

echo "==> ci.sh: all checks passed"
