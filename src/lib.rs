//! # qbf-repro
//!
//! Facade crate of the reproduction of *Giunchiglia, Narizzano, Tacchella,
//! “Quantifier structure in search based procedures for QBFs”* (DATE 2006 /
//! IEEE TCAD). Re-exports the workspace crates:
//!
//! * [`core`] ([`qbf_core`]) — QBFs with partially ordered prefixes and the
//!   search solvers (recursive Q-DLL and the learning QDPLL with the
//!   QUBE(TO)/QUBE(PO) heuristics);
//! * [`formula`] ([`qbf_formula`]) — boolean formula substrate and CNF
//!   conversion;
//! * [`prenex`] ([`qbf_prenex`]) — prenexing strategies and miniscoping;
//! * [`models`] ([`qbf_models`]) — symbolic models and diameter QBFs;
//! * [`gen`] ([`qbf_gen`]) — benchmark instance generators;
//! * [`proof`] ([`qbf_proof`]) — independent verifier for the solver's
//!   Q-resolution/Q-consensus certificates (`qbfcheck`);
//! * [`expand`] ([`qbf_expand`]) — the expansion-based second engine: an
//!   in-tree CDCL SAT core driving dual abstraction refinement.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use qbf_repro::core::{samples, solver::{Solver, SolverConfig}};
//!
//! let qbf = samples::paper_example();          // the paper's QBF (1)
//! let outcome = Solver::new(&qbf, SolverConfig::partial_order()).solve();
//! assert_eq!(outcome.value(), Some(false));    // Fig. 2 refutes it
//! ```

#![warn(missing_docs)]

pub use qbf_core as core;
pub use qbf_expand as expand;
pub use qbf_formula as formula;
pub use qbf_gen as gen;
pub use qbf_models as models;
pub use qbf_prenex as prenex;
pub use qbf_proof as proof;
