//! Diameter calculation (§VII-C): encode "is the diameter larger than n?"
//! as the QBF φn of Eq. (14), solve the probes with both the non-prenex
//! (QUBE(PO)) and prenex (QUBE(TO)) pipelines, and cross-check against
//! explicit-state BFS.
//!
//! Run with `cargo run --release --example diameter [bits]`.

use qbf_repro::core::solver::SolverConfig;
use qbf_repro::core::witness;
use qbf_repro::models::{compute_diameter, counter, diameter_qbf, explore, DiameterForm};

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let model = counter(bits);
    println!("model: {}   ({} state bits)", model.name(), model.bits());

    // Ground truth by brute-force reachability.
    let bfs = explore(&model).expect("counter has an initial state");
    println!(
        "BFS: {} reachable states, eccentricity (diameter) = {}",
        bfs.reachable, bfs.eccentricity
    );

    // One probe, to show the instance shapes.
    let tree = diameter_qbf(&model, 2, DiameterForm::Tree);
    let flat = diameter_qbf(&model, 2, DiameterForm::Prenex);
    println!(
        "\nφ2 as a quantifier tree ({} vars, {} clauses): prefix {}",
        tree.qbf.num_vars(),
        tree.qbf.matrix().len(),
        tree.qbf.prefix()
    );
    println!("φ2 prenexed (Eq. 16): prefix {}", flat.qbf.prefix());

    // Full diameter computation with both solvers.
    let budget = 5_000_000;
    let po = compute_diameter(
        &model,
        DiameterForm::Tree,
        &SolverConfig::partial_order().with_node_limit(budget),
        2 * (1 << bits),
    );
    let to = compute_diameter(
        &model,
        DiameterForm::Prenex,
        &SolverConfig::total_order().with_node_limit(budget),
        2 * (1 << bits),
    );
    println!("\n           |        QUBE(PO) |        QUBE(TO)");
    println!(
        "diameter   | {:>15?} | {:>15?}",
        po.diameter, to.diameter
    );
    println!(
        "total time | {:>13.1?} | {:>13.1?}",
        po.total_time(),
        to.total_time()
    );
    println!(
        "assignments| {:>15} | {:>15}",
        po.total_assignments(),
        to.total_assignments()
    );
    println!("\nper-probe cost (n: PO ms / TO ms):");
    for (a, b) in po.probes.iter().zip(&to.probes) {
        println!(
            "  n={:<3} {:>10.2} / {:<10.2}",
            a.n,
            a.time.as_secs_f64() * 1e3,
            b.time.as_secs_f64() * 1e3
        );
    }
    if po.diameter == Some(bfs.eccentricity) {
        println!("\nQBF diameter matches BFS ✓");
    } else {
        println!("\nwarning: diameter disagreement (budget too small?)");
    }

    // Bonus: extract the state witnessing the last true probe — the
    // outermost existential block of φ_{d−1} is exactly x_{n+1}, a state at
    // maximal distance from the initial state (§VII-C's "vertex
    // eccentricity" reading). For the counter that is the all-ones state.
    if let Some(d) = po.diameter.filter(|&d| d > 0) {
        let probe = diameter_qbf(&model, d - 1, DiameterForm::Tree);
        if let Some(w) = witness::outer_witness(
            &probe.qbf,
            &SolverConfig::partial_order().with_node_limit(budget),
        ) {
            let state: Vec<u8> = w.literals.iter().map(|l| u8::from(l.is_positive())).collect();
            println!("a state at maximal distance (bits, lsb first): {state:?}");
        }
    }
}
