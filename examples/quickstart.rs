//! Quickstart: build a non-prenex QBF with the public API, inspect its
//! quantifier structure, and solve it with both solver configurations.
//!
//! Run with `cargo run --example quickstart`.

use qbf_repro::core::recursive::{self, RecursiveConfig};
use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::core::{samples, Clause, Lit, Matrix, PrefixBuilder, Qbf, Quantifier::*, Var};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Build a QBF by hand:   ∃x ( ∀y1 ∃a (x∨y1∨a)(¬y1∨¬a)
    //                                ∧ ∀y2 ∃b (¬x∨y2∨b)(¬y2∨¬b) )
    // The two ∀-subtrees are incomparable in the prefix partial order —
    // exactly the structure a prenex solver would have to serialize.
    // ------------------------------------------------------------------
    let v: Vec<Var> = (0..5).map(Var::new).collect(); // x, y1, a, y2, b
    let mut prefix = PrefixBuilder::new(5);
    let root = prefix.add_root(Exists, [v[0]])?;
    let y1 = prefix.add_child(root, Forall, [v[1]])?;
    prefix.add_child(y1, Exists, [v[2]])?;
    let y2 = prefix.add_child(root, Forall, [v[3]])?;
    prefix.add_child(y2, Exists, [v[4]])?;

    let clause = |lits: &[i64]| -> Result<Clause, _> {
        Clause::new(lits.iter().map(|&d| Lit::from_dimacs(d)))
    };
    let matrix = Matrix::from_clauses(
        5,
        [
            clause(&[1, 2, 3])?,
            clause(&[-2, -3])?,
            clause(&[-1, 4, 5])?,
            clause(&[-4, -5])?,
        ],
    );
    let qbf = Qbf::new(prefix.finish()?, matrix)?;

    println!("QBF: {qbf}");
    println!("prenex: {}   prefix level: {}", qbf.is_prenex(), qbf.prefix().prefix_level());
    println!(
        "y1 ≺ a: {}   y1 ≺ b: {} (incomparable subtrees)",
        qbf.prefix().precedes(v[1], v[2]),
        qbf.prefix().precedes(v[1], v[4])
    );

    // ------------------------------------------------------------------
    // 2. Solve it with the structure-aware QUBE(PO)-style solver.
    // ------------------------------------------------------------------
    let outcome = Solver::new(&qbf, SolverConfig::partial_order()).solve();
    println!(
        "\nQUBE(PO) says: {:?}   ({} decisions, {} propagations)",
        outcome.value(),
        outcome.stats.decisions,
        outcome.stats.propagations
    );

    // ------------------------------------------------------------------
    // 3. The paper's running example (1) and its Fig. 2-style trace.
    // ------------------------------------------------------------------
    let example = samples::paper_example();
    let cfg = RecursiveConfig {
        trace: true,
        pure_literals: false,
        ..RecursiveConfig::default()
    };
    let run = recursive::solve(&example, &cfg);
    println!("\nThe paper's QBF (1) is {:?}; its refutation tree:", run.value);
    println!("{}", run.trace.expect("tracing enabled").render());
    Ok(())
}
