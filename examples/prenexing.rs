//! Prenexing strategies and miniscoping (§V and §VII-D): linearize a
//! non-prenex instance with the four strategies of Egly et al., compare
//! solver behaviour, then recover the structure by scope minimisation.
//!
//! Run with `cargo run --release --example prenexing`.

use qbf_repro::core::solver::{Solver, SolverConfig};
use qbf_repro::gen::{ncf, NcfParams};
use qbf_repro::prenex::{miniscope, po_to_ratio, prenex, Strategy};

fn main() {
    let params = NcfParams {
        dep: 6,
        var: 4,
        cls_ratio: 4,
        lpc: 5,
    };
    let original = ncf(&params, 11);
    println!(
        "NCF instance {params}: {} vars, {} clauses, prefix level {}",
        original.num_vars(),
        original.matrix().len(),
        original.prefix().prefix_level()
    );
    println!("non-prenex prefix (truncated): {:.90}…\n", original.prefix().to_string());

    // Solve the original with the structure-aware solver.
    let budget = 2_000_000;
    let po = Solver::new(
        &original,
        SolverConfig::partial_order().with_node_limit(budget),
    )
    .solve();
    println!(
        "QUBE(PO) on the tree     : {:?} in {} assignments",
        po.value(),
        po.stats.assignments()
    );

    // The four prenex-optimal strategies.
    for strategy in Strategy::ALL {
        let flat = prenex(&original, strategy);
        assert!(flat.is_prenex());
        let to = Solver::new(&flat, SolverConfig::total_order().with_node_limit(budget)).solve();
        println!(
            "QUBE(TO) after {strategy}   : {:?} in {} assignments  (prefix level {})",
            to.value(),
            to.stats.assignments(),
            flat.prefix().prefix_level()
        );
    }

    // Round trip: miniscoping the ∃↑∀↑ prenex form recovers structure.
    let flat = prenex(&original, Strategy::ExistsUpForallUp);
    let recovered = miniscope(&flat).expect("prenex input");
    println!(
        "\nminiscoping the flat form: {} vars eliminated, {} clauses removed",
        recovered.eliminated_vars, recovered.removed_clauses
    );
    println!(
        "PO/TO structure ratio (footnote 9): {:.1}% of ∃/∀ pairs freed",
        po_to_ratio(&recovered.qbf, &flat)
    );
}
